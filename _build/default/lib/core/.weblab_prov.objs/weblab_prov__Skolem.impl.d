lib/core/skolem.ml: Ast Printf Rule Weblab_xpath
