lib/core/query.mli: Prov_graph Trace Weblab_workflow
