lib/core/pattern_rewrite.ml: Ast Rule Trace Weblab_workflow Weblab_xpath
