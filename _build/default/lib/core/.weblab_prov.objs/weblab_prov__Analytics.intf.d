lib/core/analytics.mli: Prov_graph Weblab_xml
