lib/core/dot.ml: Buffer List Printf Prov_graph String Trace Weblab_workflow
