lib/core/static_check.mli: Prov_graph Strategy Weblab_workflow Weblab_xml Weblab_xpath
