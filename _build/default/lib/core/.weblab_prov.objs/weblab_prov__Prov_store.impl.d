lib/core/prov_store.ml: Hashtbl Option Prov_export Prov_graph Reachability Triple_store Weblab_rdf
