lib/core/prov_export.ml: Hashtbl List Printer Printf Prov_graph Prov_vocab String Term Trace Tree Triple_store Turtle Weblab_rdf Weblab_workflow Weblab_xml
