(* Concrete syntax for mapping rules:

   {v [name :] pattern ( ==> | --> ) pattern v}

   e.g. the paper's M2 (Figure 3):

   {v M2: //TextMediaUnit[$x := @id]/TextContent ==>
          //TextMediaUnit[$x := @id]/Annotation[Language] v} *)

open Weblab_xpath

exception Error of string

let parse (input : string) : Rule.t =
  (* Optional "name:" prefix — a leading NAME followed by ':' before the
     first '/' of the source pattern. *)
  let name, body =
    match String.index_opt input ':' with
    | Some i
      when (not (String.contains_from input 0 '/')
            || i < String.index input '/')
           && i + 1 < String.length input
           && input.[i + 1] <> '=' ->
      let raw = String.trim (String.sub input 0 i) in
      if raw <> "" && String.for_all (fun c -> c <> '[' && c <> ']') raw then
        (raw, String.sub input (i + 1) (String.length input - i - 1))
      else ("", input)
    | _ -> ("", input)
  in
  (* Parse the source pattern, expect ARROW, parse the target pattern. *)
  let toks =
      try Lexer.tokenize body
      with Lexer.Error { pos; message } ->
        raise (Error (Printf.sprintf "lexical error at %d: %s" pos message))
    in
    let st = { Parser.toks } in
    let source =
      try Parser.parse_pattern_tokens st
      with Parser.Error { pos; message } ->
        raise (Error (Printf.sprintf "in source pattern at %d: %s" pos message))
    in
    (match Parser.peek st with
     | Lexer.ARROW -> Parser.advance st
     | t ->
       raise
         (Error
            (Printf.sprintf "expected '==>' between patterns, found %s"
               (Lexer.token_to_string t))));
    let target =
      try Parser.parse_pattern_tokens st
      with Parser.Error { pos; message } ->
        raise (Error (Printf.sprintf "in target pattern at %d: %s" pos message))
    in
    (match Parser.peek st with
     | Lexer.EOF -> ()
     | t ->
       raise
         (Error
            (Printf.sprintf "trailing input after rule: %s"
               (Lexer.token_to_string t))));
    (try Rule.make ~name ~source ~target ()
     with Rule.Ill_formed msg -> raise (Error msg))

let parse_opt input =
  match parse input with
  | r -> Ok r
  | exception Error msg -> Error msg

(* Parse a rule file / string block: one rule per line, '#' comments and
   blank lines ignored. *)
let parse_many input =
  String.split_on_char '\n' input
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || (String.length line > 0 && line.[0] = '#') then None
         else Some (parse line))
