(** Provenance mapping rules — Definition 5:  φ{_S}(x̄) ⇒ φ{_T}(x̄).

    The source pattern selects the resources a new resource was computed
    from; the target pattern selects the produced resources; the shared
    binding variables x̄ correlate them (they become the join columns of
    Definition 8). *)

open Weblab_xpath

type t

exception Ill_formed of string

val make : ?name:string -> source:Ast.pattern -> target:Ast.pattern -> unit -> t
(** Build and validate a rule.

    Validation enforces Definition 5's side condition: the target may only
    use variables the source binds (Skolem arguments included).

    Construction also {e normalizes} implicit bindings: the paper spells
    bindings both as [\[$x := @id\]] and as the equality [\[@id = $x\]]
    (compare Example 3 with Example 9); an equality against a variable the
    pattern does not bind elsewhere is rewritten to a [Bind], so each side
    of the rule can be evaluated independently and joined.

    @raise Ill_formed when a pattern is empty or the target uses an
    unbound variable in a non-binding position. *)

val validate : t -> t
(** Re-check an already-built rule. @raise Ill_formed as {!make}. *)

val bind_free_equalities : Ast.pattern -> Ast.pattern
(** The normalization {!make} applies, exposed for reuse. *)

val name : t -> string
(** [""] for anonymous rules. *)

val source : t -> Ast.pattern

val target : t -> Ast.pattern

val join_variables : t -> string list
(** The variables shared by both sides — the join columns of
    Definition 8. *)

val to_string : t -> string
(** Concrete syntax, re-parsable by {!Rule_parser.parse}. *)
