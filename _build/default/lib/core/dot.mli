(** Graphviz rendering of provenance graphs, in the style of Figure 2:
    resources as boxes labeled with their producing call, explicit data
    dependencies as dashed arrows, inherited ones dotted, Skolem entities
    as ellipses with member edges. *)

val to_dot : Prov_graph.t -> string
