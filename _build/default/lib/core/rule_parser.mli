(** Concrete syntax for mapping rules:

    {v [name :] pattern ( ==> | --> ) pattern v}

    e.g. the paper's M2 (Figure 3):

    {v M2: //TextMediaUnit[$x := @id]/TextContent ==>
       //TextMediaUnit[$x := @id]/Annotation[Language] v} *)

exception Error of string

val parse : string -> Rule.t
(** @raise Error on lexical, syntactic or well-formedness problems. *)

val parse_opt : string -> (Rule.t, string) result

val parse_many : string -> Rule.t list
(** One rule per line; blank lines and [#] comments are ignored.
    @raise Error on the first bad line. *)
