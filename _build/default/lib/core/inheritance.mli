(** Inherited (implicit) provenance links — §4.

    Every explicit link b → a propagates structurally: descendants of b
    inherit all the provenance of b, and b also depends on the descendants
    of a (part of what was read) and on the ancestors of a (a's content is
    part of theirs).  In the running example, 8 → 4 induces 8 → 6, and
    4 → 3 induces the dependency of 4 on node 2. *)

open Weblab_xml

val generated_side : Tree.t -> Tree.node -> Tree.node list
(** Nodes inheriting the "generated" end of a link: b and its
    descendants. *)

val used_side : Tree.t -> Tree.node -> Tree.node list
(** Nodes inheriting the "used" end: a, its descendants and its
    ancestors. *)

val close : ?resources_only:bool -> Tree.t -> Prov_graph.t -> Prov_graph.t
(** Extend the graph (in place; also returned) with the inherited closure
    of its explicit links, each marked [inherited].  [resources_only]
    (default [true]) keeps the closure over labeled resources, as in
    Figure 2; with [false] unlabeled nodes participate under ["#<id>"]
    pseudo-URIs (the 4 → 2 link of the paper).  Idempotent. *)
