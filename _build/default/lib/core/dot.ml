(* Graphviz rendering of provenance graphs, in the style of Figure 2:
   resources as boxes grouped by the call that produced them, data
   dependencies as dashed arrows. *)

open Weblab_workflow

let quote s =
  "\"" ^ String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                             (List.init (String.length s) (String.get s))) ^ "\""

let to_dot (g : Prov_graph.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph provenance {\n";
  Buffer.add_string buf "  rankdir=BT;\n  node [shape=box, fontsize=10];\n";
  List.iter
    (fun (uri, (call : Trace.call)) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=%s];\n" (quote uri)
           (quote
              (Printf.sprintf "%s\\n%s@t%d" uri call.Trace.service call.Trace.time))))
    (Prov_graph.labeled_resources g);
  List.iter
    (fun entity ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=ellipse, label=%s];\n" (quote entity)
           (quote entity));
      List.iter
        (fun member ->
          Buffer.add_string buf
            (Printf.sprintf "  %s -> %s [style=dotted, label=\"member\"];\n"
               (quote entity) (quote member)))
        (Prov_graph.members g entity))
    (Prov_graph.skolem_entities g);
  List.iter
    (fun { Prov_graph.from_uri; to_uri; rule; inherited } ->
      let style = if inherited then "dotted" else "dashed" in
      let label = if rule = "" then "" else Printf.sprintf ", label=%s" (quote rule) in
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [style=%s%s];\n" (quote from_uri) (quote to_uri)
           style label))
    (Prov_graph.links g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
