(** The Provenance triple-store with materialization-on-demand — the
    Request Manager protocol of the Figure 5 architecture: a provenance
    graph is materialized by the Mapper on the first query for a workflow
    execution and served from the RDF cache afterwards. *)

open Weblab_rdf

type t

val create : unit -> t

type stats = { hits : int; misses : int; cached : int }

val stats : t -> stats

val mem : t -> id:string -> bool
(** Has the execution's graph been materialized? *)

val invalidate : t -> id:string -> unit

val request : t -> id:string -> materialize:(unit -> Prov_graph.t) -> Prov_graph.t
(** The Request Manager entry point: the cached graph, or the result of
    [materialize] (which is then cached in RDF form).  Graphs served from
    the cache go through the RDF round-trip, so inherited-link flags are
    not preserved (see {!Prov_export.of_store}). *)

val store_of : t -> id:string -> Triple_store.t option
(** Raw triples of a materialized graph — the SPARQL endpoint's view. *)

val reachability : t -> id:string -> Reachability.t option
(** The reachability index of a materialized graph, built lazily and
    cached. *)

val ancestors :
  t -> id:string -> materialize:(unit -> Prov_graph.t) -> string -> string list
(** Materialize-or-reuse, then answer upstream lineage through the cached
    index. *)
