(** Skolem-function rule constructors — the four aggregation patterns of
    §5.

    Skolem terms replace existentially quantified identifiers: when the
    produced side of a dependency has no resource identifier of its own
    (or should be grouped), a ground term f(v̄) built from bindings names
    the produced entity.  {!Weblab_xpath.Eval} computes canonical term
    strings; {!Mapping} turns an [f(…) = @id] predicate on the target's
    final step into the synthetic identifier of the produced entity and
    reports the matched nodes as its members. *)

type kind =
  | One_to_many
      (** all targets sharing a grouping value come from a single source;
          one entity per distinct target-side group *)
  | Many_to_one
      (** a unique target gathers all sources sharing a grouping value *)
  | One_to_one  (** each source generates exactly one target entity *)
  | Many_to_many
      (** all targets sharing a value link to all sources sharing it *)

val kind_to_string : kind -> string

val rule :
  ?name:string ->
  kind:kind ->
  f:string ->
  src:string ->
  tgt:string ->
  ?group_attr:string ->
  unit ->
  Rule.t
(** The §5 rule for aggregation [kind] over source elements [src]
    (carrying [@id]) and target elements [tgt] (carrying [group_attr],
    default ["val"], when grouping is needed), with Skolem symbol [f]. *)
