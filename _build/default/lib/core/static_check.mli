(** Static analysis of rulebooks against a workflow definition — the §2
    observation that orchestration constraints ("service s always runs
    before s'") prune provenance inference: rules whose source elements
    can only be produced after their own service can never fire.

    The analysis is conservative: wildcard steps and element names no
    declared service produces are assumed satisfiable. *)

type produces = (string * string list) list
(** Service name → element names it can produce.  Use ["Source"] for the
    initial document's vocabulary. *)

type diagnostic =
  | Rule_never_fires of { service : string; rule : string; reason : string }
      (** no execution of the workflow can make this rule produce a link *)
  | Unknown_service of { service : string }
      (** the rulebook mentions a service the workflow never calls *)
  | Unsatisfiable_target of { service : string; rule : string; element : string }
      (** the target pattern cannot match anything its service produces *)

val diagnostic_to_string : diagnostic -> string

val final_element : Weblab_xpath.Ast.pattern -> string option
(** The element name the final step must match, when determined. *)

val check :
  order:string list -> produces:produces -> Strategy.rulebook -> diagnostic list
(** Lint a rulebook against the (sequential) service order of a workflow
    definition. *)

val observed_produces :
  Weblab_xml.Tree.t -> Weblab_workflow.Trace.t -> produces
(** Derive the production map from an actual execution. *)

val prune :
  order:string list -> produces:produces -> Strategy.rulebook -> Strategy.rulebook
(** Drop the rules {!check} proves dead; inference on the pruned rulebook
    yields the same provenance graph (tested). *)

val unused_rules : Prov_graph.t -> Strategy.rulebook -> (string * string) list
(** Runtime companion: (service, rule) pairs that produced no link in the
    given graph — dead rules, or rules the workload never exercised. *)
