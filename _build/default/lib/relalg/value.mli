(** Values carried by binding tables: attribute values and URIs are
    strings, position() bindings are integers, and raw node references let
    the provenance engine keep track of the matched XML nodes.

    Comparison is deliberately {e loose} across [Str]/[Int] (["5"] equals
    [5]), matching XPath's handling of attribute values; joins, distinct
    and equality all use the same convention. *)

type t =
  | Str of string
  | Int of int
  | Node of int  (** an arena node id *)

val equal : t -> t -> bool
(** Loose equality (see above); [Node] only equals [Node]. *)

val compare : t -> t -> int
(** A total order (by constructor, then value) for sorting — {b not} the
    loose equality. *)

val to_string : t -> string
(** [Node n] prints as ["#n"]. *)

val as_int : t -> int option
(** The numeric view used by ordering predicates. *)

val pp : Format.formatter -> t -> unit
