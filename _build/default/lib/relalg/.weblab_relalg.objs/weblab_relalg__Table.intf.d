lib/relalg/table.mli: Format Value
