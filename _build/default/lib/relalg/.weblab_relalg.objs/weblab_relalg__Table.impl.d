lib/relalg/table.ml: Array Fmt Hashtbl List String Value
