lib/relalg/value.ml: Fmt Int Printf String
