(* Values carried by binding tables: attribute values and URIs are strings,
   position() bindings are integers, and raw node references let the
   provenance engine keep track of the matched XML nodes themselves. *)

type t =
  | Str of string
  | Int of int
  | Node of int

let equal a b =
  match a, b with
  | Str x, Str y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Node x, Node y -> Int.equal x y
  (* Mixed comparisons: "5" = 5 holds, matching XPath's loose equality on
     attribute values. *)
  | Str s, Int i | Int i, Str s -> (
    match int_of_string_opt (String.trim s) with
    | Some j -> Int.equal i j
    | None -> false)
  | (Str _ | Int _), Node _ | Node _, (Str _ | Int _) -> false

let compare a b =
  match a, b with
  | Str x, Str y -> String.compare x y
  | Int x, Int y -> Int.compare x y
  | Node x, Node y -> Int.compare x y
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Int _, _ -> -1
  | _, Int _ -> 1

let to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Node n -> Printf.sprintf "#%d" n

(* Numeric view used by <, <=, >, >= predicates. *)
let as_int = function
  | Int i -> Some i
  | Str s -> int_of_string_opt (String.trim s)
  | Node _ -> None

let pp ppf v = Fmt.string ppf (to_string v)
