(** Document states — the chain d₀ ⊑ d₁ ⊑ … ⊑ dₙ of Definition 2.

    Because the arena is append-only and every node records the timestamp
    of the service call that created it, the state of the document at time
    [t] is the restriction of the arena to nodes created at or before [t]:
    states are O(1) views, never copies.  This is what makes the
    state-replay evaluation strategy cheap, and what the §4 rewriting
    emulates with [@t] predicates on the final document. *)

type t
(** A document state: a document plus a cut-off timestamp. *)

val at : Tree.t -> Tree.timestamp -> t
(** [at doc t] is the state dₜ. *)

val final : Tree.t -> t
(** The state containing every node (d_n). *)

val time : t -> Tree.timestamp

val doc : t -> Tree.t
(** The underlying arena ({b not} restricted — use {!visible}). *)

val visible : t -> Tree.node -> bool
(** Membership of a node in the state. *)

val nodes : t -> Tree.node list
(** All nodes of the state, in document order. *)

val resources : t -> Tree.node list
(** The identified resources of the state, in document order. *)

val contains : smaller:t -> larger:t -> bool
(** The containment d ⊑{_ uri} d' for two states of the same arena
    (false if the states belong to different documents). *)

val added_fragment_roots : smaller:t -> larger:t -> Tree.node list
(** The bag d' \ d of Definition 1: roots of the fragments added strictly
    after [smaller]'s time and visible in [larger].
    @raise Invalid_argument if the states belong to different documents. *)

val to_string : ?indent:bool -> t -> string
(** Serialize the state (only its visible nodes). *)

val timestamps_monotonic : Tree.t -> bool
(** Whether every node's creation timestamp is ≥ its parent's — the
    invariant §4 relies on to drop temporal tests on intermediate pattern
    steps.  The orchestrator maintains it; property tests check it. *)

val restore_timestamps : Tree.t -> unit
(** Reconstruct per-node creation timestamps from the persisted [@t]
    labels — required after reloading a document from storage, since
    arena timestamps are session state.  Exact for Recorder-produced
    documents (every fragment root is a labeled resource); nodes above
    the first labeled resource count as initial (t = 0). *)
