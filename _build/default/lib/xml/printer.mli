(** Serialization of WebLab documents to XML text.

    Output is canonical: attributes print sorted, so two structurally
    equal documents ({!Tree.equal_subtree}) serialize identically — which
    the black-box Recorder relies on when round-tripping documents through
    services. *)

val escape_text : string -> string
(** Escape character data ([&], [<], [>]). *)

val escape_attr : string -> string
(** Escape an attribute value (ampersand, less-than, double quote). *)

val subtree_to_string :
  ?indent:bool -> ?visible:(Tree.node -> bool) -> Tree.t -> Tree.node -> string
(** Serialize one subtree.  [visible] restricts the output to a document
    state (nodes failing the predicate are skipped together with their
    subtrees); [indent] pretty-prints with two-space indentation. *)

val to_string : ?indent:bool -> ?visible:(Tree.node -> bool) -> Tree.t -> string
(** Serialize the whole document ([""] when it has no root). *)
