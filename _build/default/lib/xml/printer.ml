(* Serialization of WebLab documents back to XML text. *)

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Attributes are printed sorted so that output is canonical: two documents
   that are [Tree.equal_subtree] print identically. *)
let attrs_to_string attrs =
  List.sort compare attrs
  |> List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k (escape_attr v))
  |> String.concat ""

(* [visible] restricts printing to a document state (see {!Doc_state}). *)
let subtree_to_buf ?(indent = false) ?(visible = fun _ -> true) buf doc node =
  let rec go depth n =
    if visible n then begin
      let pad () =
        if indent then begin
          if Buffer.length buf > 0 then Buffer.add_char buf '\n';
          Buffer.add_string buf (String.make (2 * depth) ' ')
        end
      in
      if Tree.is_text doc n then begin
        pad ();
        Buffer.add_string buf (escape_text (Tree.text doc n))
      end
      else begin
        pad ();
        let name = Tree.name doc n in
        let kids = List.filter visible (Tree.children doc n) in
        Buffer.add_string buf
          (Printf.sprintf "<%s%s" name (attrs_to_string (Tree.attrs doc n)));
        if kids = [] then Buffer.add_string buf "/>"
        else if indent && List.for_all (fun k -> Tree.is_text doc k) kids then begin
          (* Text-only content stays inline, so indentation never leaks
             into string values. *)
          Buffer.add_char buf '>';
          List.iter
            (fun k -> Buffer.add_string buf (escape_text (Tree.text doc k)))
            kids;
          Buffer.add_string buf (Printf.sprintf "</%s>" name)
        end
        else begin
          Buffer.add_char buf '>';
          List.iter (go (depth + 1)) kids;
          if indent && List.exists (fun k -> Tree.is_element doc k) kids then begin
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make (2 * depth) ' ')
          end;
          Buffer.add_string buf (Printf.sprintf "</%s>" name)
        end
      end
    end
  in
  go 0 node

let subtree_to_string ?indent ?visible doc node =
  let buf = Buffer.create 256 in
  subtree_to_buf ?indent ?visible buf doc node;
  Buffer.contents buf

let to_string ?indent ?visible doc =
  if Tree.has_root doc then subtree_to_string ?indent ?visible doc (Tree.root doc)
  else ""
