(* Structural XML diff between two *independent* documents, used by the
   Recorder for black-box services that return a serialized document (the
   paper's "standard XML-diff service", §6).

   Under append semantics the new document must contain the old one
   (Definition 1's ⊑_uri): the old children of every matched element must
   appear, in order, as a subsequence of the new children.  Matching is
   greedy in document order, pairing each old child with the first
   not-yet-matched new child it embeds into; this is exact whenever
   services append fragments (the WebLab contract) and is the standard
   behaviour of ordered-tree diff under insert-only edits. *)

type edit = {
  new_node : Tree.node;        (* root of an added fragment, in the new doc *)
  parent_in_new : Tree.node;   (* its parent (matched to an old node) *)
}

type result = {
  added : edit list;                         (* in document order *)
  matched : (Tree.node * Tree.node) list;    (* (old node, new node) pairs *)
}

exception Not_contained of string

type acc = {
  mutable adds : edit list;
  mutable pairs : (Tree.node * Tree.node) list;
}

(* Does [old] subtree embed into [nw] subtree under insert-only edits?
   On success, appends to [acc] the new-document nodes that are additions
   and the matched (old, new) node pairs. *)
let rec embed old_doc old_n new_doc new_n acc =
  let ok =
    match Tree.is_text old_doc old_n, Tree.is_text new_doc new_n with
    | true, true -> String.equal (Tree.text old_doc old_n) (Tree.text new_doc new_n)
    | false, false ->
      String.equal (Tree.name old_doc old_n) (Tree.name new_doc new_n)
      && attrs_preserved old_doc old_n new_doc new_n
      && children_embed old_doc old_n new_doc new_n acc
    | _ -> false
  in
  if ok then acc.pairs <- (old_n, new_n) :: acc.pairs;
  ok

(* The uri function may gain identifiers but never change them; other
   attributes must be preserved (services only add).  We allow the new
   node to carry extra attributes (e.g. the @s/@t labels the recorder adds). *)
and attrs_preserved old_doc old_n new_doc new_n =
  List.for_all
    (fun (k, v) ->
      match Tree.attr new_doc new_n k with
      | Some v' -> String.equal v v'
      | None -> false)
    (Tree.attrs old_doc old_n)

and children_embed old_doc old_n new_doc new_n acc =
  let new_kids = Array.of_list (Tree.children new_doc new_n) in
  let n = Array.length new_kids in
  let rec loop old_kids j =
    match old_kids with
    | [] ->
      (* All remaining new children are additions. *)
      for k = j to n - 1 do
        acc.adds <- { new_node = new_kids.(k); parent_in_new = new_n } :: acc.adds
      done;
      true
    | ok :: rest ->
      let rec find j =
        if j >= n then false
        else begin
          let saved_adds = acc.adds and saved_pairs = acc.pairs in
          if embed old_doc ok new_doc new_kids.(j) acc then loop rest (j + 1)
          else begin
            acc.adds <- saved_adds;
            acc.pairs <- saved_pairs;
            acc.adds <-
              { new_node = new_kids.(j); parent_in_new = new_n } :: acc.adds;
            find (j + 1)
          end
        end
      in
      find j
  in
  loop (Tree.children old_doc old_n) 0

(* [diff ~old_doc ~new_doc] returns the added fragments and the node
   correspondence, or raises {!Not_contained} when the new document does
   not contain the old one (an append-semantics violation). *)
let diff ~old_doc ~new_doc =
  if not (Tree.has_root old_doc) then
    if Tree.has_root new_doc then
      { added = [ { new_node = Tree.root new_doc; parent_in_new = Tree.no_node } ];
        matched = [] }
    else { added = []; matched = [] }
  else begin
    let acc = { adds = []; pairs = [] } in
    if not (embed old_doc (Tree.root old_doc) new_doc (Tree.root new_doc) acc)
    then
      raise
        (Not_contained
           "new document does not contain the old one (append semantics \
            violated)");
    { added = List.rev acc.adds; matched = acc.pairs }
  end

let added ~old_doc ~new_doc = (diff ~old_doc ~new_doc).added

let contains ~old_doc ~new_doc =
  match diff ~old_doc ~new_doc with
  | _ -> true
  | exception Not_contained _ -> false
