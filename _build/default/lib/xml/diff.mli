(** Structural XML diff under insert-only edits — the paper's "standard
    XML-diff service" (§6), used by the Recorder to identify the fragments
    a black-box service added.

    Under append semantics the new document must contain the old one
    (Definition 1's ⊑{_uri}): the old children of every matched element
    appear, in order, as a subsequence of the new children.  Matching is
    greedy in document order; it is exact whenever services append
    fragments (the WebLab contract). *)

type edit = {
  new_node : Tree.node;       (** root of an added fragment, in the new doc *)
  parent_in_new : Tree.node;  (** its parent (a matched node) *)
}

type result = {
  added : edit list;                       (** in document order *)
  matched : (Tree.node * Tree.node) list;  (** (old node, new node) pairs *)
}

exception Not_contained of string
(** The new document does not contain the old one: some existing content
    was modified, removed or reordered — an append-semantics violation. *)

val diff : old_doc:Tree.t -> new_doc:Tree.t -> result
(** The added fragments and the correspondence between retained nodes.
    Attribute additions on matched nodes are tolerated (URI promotion and
    the Recorder's own labels); modifications and removals are not.
    @raise Not_contained on an append-semantics violation. *)

val added : old_doc:Tree.t -> new_doc:Tree.t -> edit list
(** [diff] restricted to its [added] component. *)

val contains : old_doc:Tree.t -> new_doc:Tree.t -> bool
(** Non-raising containment check. *)
