lib/xml/vec.ml: Array
