lib/xml/doc_state.ml: List Printer Tree
