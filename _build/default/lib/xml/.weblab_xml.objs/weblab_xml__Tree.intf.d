lib/xml/tree.mli:
