lib/xml/diff.ml: Array List String Tree
