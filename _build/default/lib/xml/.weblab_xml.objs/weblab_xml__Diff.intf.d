lib/xml/diff.mli: Tree
