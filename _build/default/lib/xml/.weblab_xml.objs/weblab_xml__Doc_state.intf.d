lib/xml/doc_state.mli: Tree
