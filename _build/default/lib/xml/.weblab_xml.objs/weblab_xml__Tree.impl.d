lib/xml/tree.ml: Array Buffer Hashtbl List Option String Vec
