(* Abstract syntax of XPath patterns (Definition 4 of the paper).

   Patterns are Core XPath — child and descendant axes, no functions —
   enriched with predicates and variable assignments [$x := @a].  The §5
   extensions add position() bindings and Skolem-function operands. *)

type axis =
  | Child
  | Descendant
  | Self
  | Descendant_or_self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following_sibling
  | Preceding_sibling

type nametest =
  | Name of string
  | Any

type cmpop = Eq | Neq | Lt | Le | Gt | Ge

type operand =
  | Attr of string                     (* @a, relative to the context node *)
  | Lit of string                      (* 'fr' *)
  | Num of int                         (* 5 *)
  | Var of string                      (* $x, bound earlier in the pattern
                                          or supplied externally *)
  | Position                           (* position() *)
  | Last                               (* last() *)
  | Count of rel_path                  (* count(Annotation/Language) *)
  | Strlen of operand                  (* string-length(@id) *)
  | Path of rel_path                   (* Annotation/Language: existential
                                          over string-values *)
  | Path_attr of rel_path * string     (* Member/@ref: the attribute values
                                          of the nodes a path reaches *)
  | Skolem of string * operand list    (* f($x) — §5 Skolem functions *)

and pred =
  | Bind of string * operand           (* [$x := @a] / [$p := position()] *)
  | Cmp of operand * cmpop * operand
  | Exists_path of rel_path            (* [Annotation/Language] *)
  | Exists_attr of string              (* [@id] *)
  | Index of int                       (* [1] *)
  | Fn_bool of string * operand list   (* contains(@id, 'r') etc. *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

and rel_step = { raxis : axis; rtest : nametest }

and rel_path = rel_step list

type step = {
  axis : axis;
  test : nametest;
  preds : pred list;
}

type pattern = step list
(* The first step's axis is interpreted relative to the (virtual) document
   node: [Child] for an absolute "/Name", [Descendant] for "//Name". *)

(* Binding variables of a pattern, in binding order (the x̄ of φ(x̄)). *)
let variables (p : pattern) : string list =
  let rec of_pred acc = function
    | Bind (x, _) -> if List.mem x acc then acc else x :: acc
    | And (a, b) | Or (a, b) -> of_pred (of_pred acc a) b
    | Not a -> of_pred acc a
    | Cmp _ | Exists_path _ | Exists_attr _ | Index _ | Fn_bool _ -> acc
  in
  List.fold_left
    (fun acc step -> List.fold_left of_pred acc step.preds)
    [] p
  |> List.rev

(* Free variables: used in comparisons but never bound by this pattern.
   Target patterns of a mapping rule may only use variables bound by the
   source pattern (Definition 5). *)
let free_variables (p : pattern) : string list =
  let bound = variables p in
  let rec of_operand acc = function
    | Var x -> if List.mem x bound || List.mem x acc then acc else x :: acc
    | Skolem (_, args) -> List.fold_left of_operand acc args
    | Strlen a -> of_operand acc a
    | Attr _ | Lit _ | Num _ | Position | Last | Count _ | Path _
    | Path_attr _ -> acc
  in
  let rec of_pred acc = function
    | Bind (_, src) -> of_operand acc src
    | Cmp (a, _, b) -> of_operand (of_operand acc a) b
    | Fn_bool (_, args) -> List.fold_left of_operand acc args
    | And (a, b) | Or (a, b) -> of_pred (of_pred acc a) b
    | Not a -> of_pred acc a
    | Exists_path _ | Exists_attr _ | Index _ -> acc
  in
  List.fold_left
    (fun acc step -> List.fold_left of_pred acc step.preds)
    [] p
  |> List.rev

(* Append a predicate to the final step (used by the §4 temporal
   rewriting). *)
let add_pred_to_last_step (p : pattern) (pred : pred) : pattern =
  match List.rev p with
  | [] -> invalid_arg "add_pred_to_last_step: empty pattern"
  | last :: rev_init ->
    List.rev ({ last with preds = last.preds @ [ pred ] } :: rev_init)

(* Prepend a descendant-or-self::* step — the §4 device for inferring
   inherited provenance directly from rewritten patterns. *)
let add_descendant_or_self (p : pattern) : pattern =
  p @ [ { axis = Descendant_or_self; test = Any; preds = [] } ]
