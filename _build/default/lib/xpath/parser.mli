(** Recursive-descent parser for XPath patterns (Definition 4).

    The concrete syntax is the paper's:
    - steps separated by [/] (child) or [//] (descendant), starting with
      one of them (patterns are absolute);
    - name tests or [*];
    - predicates in brackets: positional ([\[1\]]), attribute existence
      ([\[@id\]]), comparisons ([\[@t < 5\]], [\[A/L = 'fr'\]]), boolean
      combinations with [and]/[or]/[not(...)], variable bindings
      ([\[$x := @id\]] and [\[$p := position()\]]) and Skolem terms
      ([\[f($x) = @id\]]). *)

exception Error of { pos : int; message : string }

val pattern : string -> Ast.pattern
(** Parse a complete pattern.
    @raise Error with a byte offset on malformed input. *)

val pattern_opt : string -> (Ast.pattern, string) result
(** Non-raising variant. *)

val axis_of_name : string -> Ast.axis option
(** Recognize an axis name ("child", "parent", "following-sibling", …). *)

(** {1 Incremental interface}

    Used by the rule parser, which reads [pattern ==> pattern] from one
    token stream. *)

type state = { mutable toks : (Lexer.token * int) list }

val peek : state -> Lexer.token

val advance : state -> unit

val parse_pattern_tokens : state -> Ast.pattern
(** Parse one pattern starting at the current token; stops before any
    token that cannot continue a pattern (e.g. the rule arrow). *)
