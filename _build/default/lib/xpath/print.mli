(** Pretty-printer for patterns, producing the paper's concrete syntax.
    [Parser.pattern (Print.pattern_to_string p) = p] for every pattern in
    the parsable fragment (property-tested). *)

val pattern_to_string : Ast.pattern -> string

val pred_to_string : Ast.pred -> string

val operand_to_string : Ast.operand -> string

val rel_path_to_string : Ast.rel_path -> string

val nametest_to_string : Ast.nametest -> string

val cmpop_to_string : Ast.cmpop -> string

val axis_to_string : Ast.axis -> string
