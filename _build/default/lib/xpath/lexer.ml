(* Tokenizer for the pattern syntax of Definition 4 and the rule syntax of
   Definition 5 (the "==>"/"-->" arrow token is used by the rule parser). *)

type token =
  | SLASH          (* /  *)
  | DSLASH         (* // *)
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | AT             (* @ *)
  | DOLLAR         (* $ *)
  | ASSIGN         (* := *)
  | AXISSEP        (* :: *)
  | STAR
  | COMMA
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | ARROW          (* ==> or --> *)
  | RARROW         (* -> *)
  | LBRACE
  | RBRACE
  | NAME of string
  | STRING of string
  | NUMBER of int
  | EOF

exception Error of { pos : int; message : string }

let fail pos message = raise (Error { pos; message })

let token_to_string = function
  | SLASH -> "/"
  | DSLASH -> "//"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LPAREN -> "("
  | RPAREN -> ")"
  | AT -> "@"
  | DOLLAR -> "$"
  | ASSIGN -> ":="
  | AXISSEP -> "::"
  | STAR -> "*"
  | COMMA -> ","
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | ARROW -> "==>"
  | RARROW -> "->"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | NAME s -> s
  | STRING s -> Printf.sprintf "'%s'" s
  | NUMBER n -> string_of_int n
  | EOF -> "<eof>"

let is_digit c = c >= '0' && c <= '9'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || is_digit c || c = '-' || c = '.'

(* [tokenize s] returns the token list with, for each token, its start
   offset (used in error messages). *)
let tokenize s : (token * int) list =
  let n = String.length s in
  let rec loop i acc =
    if i >= n then List.rev ((EOF, i) :: acc)
    else
      let c = s.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then loop (i + 1) acc
      else if c = '/' then
        if i + 1 < n && s.[i + 1] = '/' then loop (i + 2) ((DSLASH, i) :: acc)
        else loop (i + 1) ((SLASH, i) :: acc)
      else if c = '[' then loop (i + 1) ((LBRACKET, i) :: acc)
      else if c = ']' then loop (i + 1) ((RBRACKET, i) :: acc)
      else if c = '(' then loop (i + 1) ((LPAREN, i) :: acc)
      else if c = ')' then loop (i + 1) ((RPAREN, i) :: acc)
      else if c = '@' then loop (i + 1) ((AT, i) :: acc)
      else if c = '$' then loop (i + 1) ((DOLLAR, i) :: acc)
      else if c = '*' then loop (i + 1) ((STAR, i) :: acc)
      else if c = ',' then loop (i + 1) ((COMMA, i) :: acc)
      else if c = ':' && i + 1 < n && s.[i + 1] = '=' then
        loop (i + 2) ((ASSIGN, i) :: acc)
      else if c = ':' && i + 1 < n && s.[i + 1] = ':' then
        loop (i + 2) ((AXISSEP, i) :: acc)
      else if c = '=' then
        if i + 2 < n && s.[i + 1] = '=' && s.[i + 2] = '>' then
          loop (i + 3) ((ARROW, i) :: acc)
        else loop (i + 1) ((EQ, i) :: acc)
      else if c = '-' && i + 2 < n && s.[i + 1] = '-' && s.[i + 2] = '>' then
        loop (i + 3) ((ARROW, i) :: acc)
      else if c = '-' && i + 1 < n && s.[i + 1] = '>' then
        loop (i + 2) ((RARROW, i) :: acc)
      else if c = '{' then loop (i + 1) ((LBRACE, i) :: acc)
      else if c = '}' then loop (i + 1) ((RBRACE, i) :: acc)
      else if c = '!' && i + 1 < n && s.[i + 1] = '=' then
        loop (i + 2) ((NEQ, i) :: acc)
      else if c = '<' then
        if i + 1 < n && s.[i + 1] = '=' then loop (i + 2) ((LE, i) :: acc)
        else loop (i + 1) ((LT, i) :: acc)
      else if c = '>' then
        if i + 1 < n && s.[i + 1] = '=' then loop (i + 2) ((GE, i) :: acc)
        else loop (i + 1) ((GT, i) :: acc)
      else if c = '\'' || c = '"' then begin
        let rec scan j =
          if j >= n then fail i "unterminated string literal"
          else if s.[j] = c then j
          else scan (j + 1)
        in
        let j = scan (i + 1) in
        loop (j + 1) ((STRING (String.sub s (i + 1) (j - i - 1)), i) :: acc)
      end
      else if is_digit c then begin
        let rec scan j = if j < n && is_digit s.[j] then scan (j + 1) else j in
        let j = scan i in
        loop j ((NUMBER (int_of_string (String.sub s i (j - i))), i) :: acc)
      end
      else if is_name_start c then begin
        let rec scan j = if j < n && is_name_char s.[j] then scan (j + 1) else j in
        let j = scan i in
        loop j ((NAME (String.sub s i (j - i)), i) :: acc)
      end
      else fail i (Printf.sprintf "unexpected character %C" c)
  in
  loop 0 []
