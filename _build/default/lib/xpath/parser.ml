(* Recursive-descent parser for XPath patterns (Definition 4).

   Grammar (tokens from {!Lexer}):

   {v
   pattern   ::= ('/' | '//') step (('/' | '//') step)*
   step      ::= nametest ('[' pred ']')*
   nametest  ::= NAME | '*'
   pred      ::= NUMBER                          (positional [1])
               | '$' NAME ':=' source            (variable binding)
               | orexpr
   source    ::= '@' NAME | 'position' '(' ')'
   orexpr    ::= andexpr ('or' andexpr)*
   andexpr   ::= unary ('and' unary)*
   unary     ::= 'not' '(' orexpr ')' | cmp-or-exists
   cmp       ::= operand (CMPOP operand)?
   operand   ::= '@' NAME | STRING | NUMBER | '$' NAME
               | NAME '(' operand (',' operand)* ')'   (Skolem / position())
               | relpath
   relpath   ::= nt (('/' | '//') nt)*        with nt ::= NAME | '*'
   v} *)

exception Error of { pos : int; message : string }

type state = {
  mutable toks : (Lexer.token * int) list;
}

let fail st message =
  let pos = match st.toks with (_, p) :: _ -> p | [] -> 0 in
  raise (Error { pos; message })

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Lexer.EOF

let peek2 st = match st.toks with _ :: (t, _) :: _ -> t | _ -> Lexer.EOF

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string tok)
         (Lexer.token_to_string (peek st)))

let axis_of_name = function
  | "child" -> Some Ast.Child
  | "descendant" -> Some Ast.Descendant
  | "self" -> Some Ast.Self
  | "descendant-or-self" -> Some Ast.Descendant_or_self
  | "parent" -> Some Ast.Parent
  | "ancestor" -> Some Ast.Ancestor
  | "ancestor-or-self" -> Some Ast.Ancestor_or_self
  | "following-sibling" -> Some Ast.Following_sibling
  | "preceding-sibling" -> Some Ast.Preceding_sibling
  | _ -> None

let parse_nametest st =
  match peek st with
  | Lexer.NAME n -> advance st; Ast.Name n
  | Lexer.STAR -> advance st; Ast.Any
  | t ->
    fail st
      (Printf.sprintf "expected an element name or '*' but found %s"
         (Lexer.token_to_string t))

(* An optional explicit "axis::" prefix before a name test; [default] is
   the axis implied by the separator that preceded. *)
let parse_axis_nametest st ~default =
  match peek st, peek2 st with
  | Lexer.NAME n, Lexer.AXISSEP -> (
    match axis_of_name n with
    | Some axis ->
      advance st;
      advance st;
      (axis, parse_nametest st)
    | None -> fail st (Printf.sprintf "unknown axis %s::" n))
  | _ -> (default, parse_nametest st)

(* A relative path, optionally ending in an attribute step (A/B/@c).
   Returns the element steps and the trailing attribute name, if any. *)
let parse_rel_path st first =
  let rec steps acc =
    match peek st with
    | Lexer.SLASH when peek2 st = Lexer.AT ->
      advance st;
      advance st;
      (match peek st with
       | Lexer.NAME a -> advance st; (List.rev acc, Some a)
       | t ->
         fail st
           (Printf.sprintf "expected an attribute name after '/@', found %s"
              (Lexer.token_to_string t)))
    | Lexer.SLASH ->
      advance st;
      let axis, t = parse_axis_nametest st ~default:Ast.Child in
      steps ({ Ast.raxis = axis; rtest = t } :: acc)
    | Lexer.DSLASH ->
      advance st;
      let t = parse_nametest st in
      steps ({ Ast.raxis = Ast.Descendant; rtest = t } :: acc)
    | _ -> (List.rev acc, None)
  in
  steps [ first ]

let cmpop_of_token = function
  | Lexer.EQ -> Some Ast.Eq
  | Lexer.NEQ -> Some Ast.Neq
  | Lexer.LT -> Some Ast.Lt
  | Lexer.LE -> Some Ast.Le
  | Lexer.GT -> Some Ast.Gt
  | Lexer.GE -> Some Ast.Ge
  | _ -> None

let rec parse_operand st =
  match peek st with
  | Lexer.AT ->
    advance st;
    (match peek st with
     | Lexer.NAME a -> advance st; Ast.Attr a
     | t -> fail st (Printf.sprintf "expected an attribute name after '@', found %s"
                       (Lexer.token_to_string t)))
  | Lexer.STRING s -> advance st; Ast.Lit s
  | Lexer.NUMBER n -> advance st; Ast.Num n
  | Lexer.DOLLAR ->
    advance st;
    (match peek st with
     | Lexer.NAME x -> advance st; Ast.Var x
     | t -> fail st (Printf.sprintf "expected a variable name after '$', found %s"
                       (Lexer.token_to_string t)))
  | Lexer.NAME f when peek2 st = Lexer.LPAREN ->
    advance st;
    advance st;
    if peek st = Lexer.RPAREN then begin
      advance st;
      match f with
      | "position" -> Ast.Position
      | "last" -> Ast.Last
      | _ -> Ast.Skolem (f, [])
    end
    else begin
      let rec args acc =
        let a = parse_operand st in
        match peek st with
        | Lexer.COMMA -> advance st; args (a :: acc)
        | Lexer.RPAREN -> advance st; List.rev (a :: acc)
        | t -> fail st (Printf.sprintf "expected ',' or ')' in argument list, found %s"
                          (Lexer.token_to_string t))
      in
      let args = args [] in
      match f, args with
      | "count", [ Ast.Path rp ] -> Ast.Count rp
      | "count", _ -> fail st "count() expects a path argument"
      | "string-length", [ a ] -> Ast.Strlen a
      | "string-length", _ -> fail st "string-length() expects one argument"
      | _ -> Ast.Skolem (f, args)
    end
  | Lexer.NAME _ | Lexer.STAR ->
    let axis, t = parse_axis_nametest st ~default:Ast.Child in
    (match parse_rel_path st { Ast.raxis = axis; rtest = t } with
     | rp, None -> Ast.Path rp
     | rp, Some a -> Ast.Path_attr (rp, a))
  | t ->
    fail st (Printf.sprintf "expected an operand but found %s" (Lexer.token_to_string t))

let rec parse_orexpr st =
  let a = parse_andexpr st in
  match peek st with
  | Lexer.NAME "or" -> advance st; Ast.Or (a, parse_orexpr st)
  | _ -> a

and parse_andexpr st =
  let a = parse_unary st in
  match peek st with
  | Lexer.NAME "and" -> advance st; Ast.And (a, parse_andexpr st)
  | _ -> a

and parse_unary st =
  match peek st with
  | Lexer.NAME "not" when peek2 st = Lexer.LPAREN ->
    advance st;
    advance st;
    let e = parse_orexpr st in
    expect st Lexer.RPAREN;
    Ast.Not e
  | _ ->
    let a = parse_operand st in
    (match cmpop_of_token (peek st) with
     | Some op ->
       advance st;
       Ast.Cmp (a, op, parse_operand st)
     | None -> (
       match a with
       | Ast.Attr name -> Ast.Exists_attr name
       | Ast.Path p -> Ast.Exists_path p
       | Ast.Skolem (("contains" | "starts-with" | "ends-with") as f, args) ->
         Ast.Fn_bool (f, args)
       | _ -> fail st "this operand cannot be used as a boolean predicate"))

let parse_pred st =
  match peek st with
  | Lexer.NUMBER n when peek2 st = Lexer.RBRACKET -> advance st; Ast.Index n
  | Lexer.DOLLAR when
      (match st.toks with
       | _ :: (Lexer.NAME _, _) :: (Lexer.ASSIGN, _) :: _ -> true
       | _ -> false) ->
    advance st;
    let x = match peek st with Lexer.NAME x -> advance st; x | _ -> assert false in
    expect st Lexer.ASSIGN;
    let src = parse_operand st in
    (match src with
     | Ast.Attr _ | Ast.Position -> Ast.Bind (x, src)
     | _ -> fail st "a binding source must be an attribute or position()")
  | _ -> parse_orexpr st

let parse_step st axis =
  let axis, test = parse_axis_nametest st ~default:axis in
  let rec preds acc =
    if peek st = Lexer.LBRACKET then begin
      advance st;
      let p = parse_pred st in
      expect st Lexer.RBRACKET;
      preds (p :: acc)
    end
    else List.rev acc
  in
  { Ast.axis; test; preds = preds [] }

(* Parse a pattern from the current token position; stops at EOF or at a
   token that cannot continue a pattern (e.g. the rule arrow). *)
let parse_pattern_tokens st =
  let leading =
    match peek st with
    | Lexer.SLASH -> advance st; Ast.Child
    | Lexer.DSLASH -> advance st; Ast.Descendant
    | t ->
      fail st
        (Printf.sprintf "a pattern must start with '/' or '//', found %s"
           (Lexer.token_to_string t))
  in
  let first = parse_step st leading in
  let rec more acc =
    match peek st with
    | Lexer.SLASH -> advance st; more (parse_step st Ast.Child :: acc)
    | Lexer.DSLASH -> advance st; more (parse_step st Ast.Descendant :: acc)
    | _ -> List.rev acc
  in
  more [ first ]

let wrap_lexer_error f s =
  match f s with
  | v -> v
  | exception Lexer.Error { pos; message } -> raise (Error { pos; message })

let pattern (s : string) : Ast.pattern =
  wrap_lexer_error
    (fun s ->
      let st = { toks = Lexer.tokenize s } in
      let p = parse_pattern_tokens st in
      (match peek st with
       | Lexer.EOF -> ()
       | t ->
         fail st (Printf.sprintf "trailing input after pattern: %s"
                    (Lexer.token_to_string t)));
      p)
    s

let pattern_opt s =
  match pattern s with
  | p -> Ok p
  | exception Error { pos; message } ->
    Error (Printf.sprintf "pattern parse error at offset %d: %s" pos message)
