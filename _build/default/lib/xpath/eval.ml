open Weblab_xml
open Weblab_relalg

type guards = {
  visible : Tree.node -> bool;
  env : (string * Value.t) list;
}

let no_guards = { visible = (fun _ -> true); env = [] }

let state_guards st = { visible = Doc_state.visible st; env = [] }

let test_matches doc test n =
  Tree.is_element doc n
  &&
  match test with
  | Ast.Any -> true
  | Ast.Name name -> String.equal name (Tree.name doc n)

(* Candidate nodes of an axis step from a context node.  [ctx = no_node]
   stands for the virtual document node (used for the first step of an
   absolute pattern). *)
let axis_nodes doc visible ctx axis =
  let from_document = ctx = Tree.no_node in
  let siblings ~after =
    let p = Tree.parent doc ctx in
    if p = Tree.no_node then []
    else begin
      let seen = ref false in
      Tree.children doc p
      |> List.filter (fun k ->
             if k = ctx then begin
               seen := true;
               false
             end
             else if after then !seen
             else not !seen)
    end
  in
  let raw =
    match axis, from_document with
    | Ast.Child, true -> if Tree.has_root doc then [ Tree.root doc ] else []
    | Ast.Child, false -> Tree.children doc ctx
    | (Ast.Descendant | Ast.Descendant_or_self), true ->
      if Tree.has_root doc then Tree.descendant_or_self doc (Tree.root doc) else []
    | Ast.Descendant, false -> Tree.descendants doc ctx
    | Ast.Descendant_or_self, false -> Tree.descendant_or_self doc ctx
    | Ast.Self, true -> if Tree.has_root doc then [ Tree.root doc ] else []
    | Ast.Self, false -> [ ctx ]
    | (Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self
      | Ast.Following_sibling | Ast.Preceding_sibling), true -> []
    | Ast.Parent, false ->
      let p = Tree.parent doc ctx in
      if p = Tree.no_node then [] else [ p ]
    | Ast.Ancestor, false -> Tree.ancestors doc ctx
    | Ast.Ancestor_or_self, false -> ctx :: Tree.ancestors doc ctx
    | Ast.Following_sibling, false -> siblings ~after:true
    | Ast.Preceding_sibling, false -> siblings ~after:false
  in
  List.filter visible raw

(* Nodes reached by a relative path (inside a predicate) from [ctx]. *)
let eval_rel_path doc visible ctx rp =
  List.fold_left
    (fun ctxs { Ast.raxis; rtest } ->
      List.concat_map
        (fun c ->
          axis_nodes doc visible c raxis
          |> List.filter (test_matches doc rtest))
        ctxs)
    [ ctx ] rp

(* The possible values of an operand at a context node.  A [Path] operand
   contributes the string-value of each node it reaches (XPath's
   existential semantics over node sets); other operands contribute at
   most one value. *)
let rec operand_values doc visible env ~pos ~last ctx (op : Ast.operand) :
    Value.t list =
  match op with
  | Ast.Attr a -> (
    match Tree.attr doc ctx a with Some v -> [ Value.Str v ] | None -> [])
  | Ast.Lit s -> [ Value.Str s ]
  | Ast.Num n -> [ Value.Int n ]
  | Ast.Var x -> (
    match List.assoc_opt x env with Some v -> [ v ] | None -> [])
  | Ast.Position -> [ Value.Int pos ]
  | Ast.Last -> [ Value.Int last ]
  | Ast.Count rp ->
    [ Value.Int (List.length (eval_rel_path doc visible ctx rp)) ]
  | Ast.Strlen a -> (
    match operand_values doc visible env ~pos ~last ctx a with
    | v :: _ -> [ Value.Int (String.length (Value.to_string v)) ]
    | [] -> [])
  | Ast.Path rp ->
    eval_rel_path doc visible ctx rp
    |> List.map (fun n -> Value.Str (Tree.string_value doc n))
  | Ast.Path_attr (rp, a) ->
    eval_rel_path doc visible ctx rp
    |> List.filter_map (fun n ->
           Option.map (fun v -> Value.Str v) (Tree.attr doc n a))
  | Ast.Skolem (f, args) ->
    (* A Skolem term has a value only when every argument does; the value is
       the canonical ground term f(v1,...,vn), so equal arguments yield the
       same (joinable) identifier — exactly the §5 aggregation device. *)
    let arg_values =
      List.map
        (fun a ->
          match operand_values doc visible env ~pos ~last ctx a with
          | [ v ] -> Some v
          | v :: _ -> Some v
          | [] -> None)
        args
    in
    if List.exists Option.is_none arg_values then []
    else
      [ Value.Str
          (Printf.sprintf "%s(%s)" f
             (String.concat ","
                (List.map (fun v -> Value.to_string (Option.get v)) arg_values)))
      ]

let cmp_values op (a : Value.t) (b : Value.t) =
  match op with
  | Ast.Eq -> Value.equal a b
  | Ast.Neq -> not (Value.equal a b)
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
    let c =
      match Value.as_int a, Value.as_int b with
      | Some x, Some y -> compare x y
      | _ -> String.compare (Value.to_string a) (Value.to_string b)
    in
    match op with
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0
    | Ast.Eq | Ast.Neq -> assert false)

(* The supported boolean functions; all use first-value semantics on
   their arguments, as XPath's string() conversion does. *)
let string_fn name a b =
  match name with
  | "contains" ->
    let na = String.length a and nb = String.length b in
    let rec loop i = i + nb <= na && (String.sub a i nb = b || loop (i + 1)) in
    nb = 0 || loop 0
  | "starts-with" ->
    String.length a >= String.length b
    && String.sub a 0 (String.length b) = b
  | "ends-with" ->
    String.length a >= String.length b
    && String.sub a (String.length a - String.length b) (String.length b) = b
  | f -> invalid_arg (Printf.sprintf "Eval: unknown boolean function %s()" f)

let rec eval_bool doc visible env ~pos ~last ctx (p : Ast.pred) : bool =
  match p with
  | Ast.Bind _ ->
    invalid_arg "Eval: variable bindings cannot appear under and/or/not"
  | Ast.Cmp (a, op, b) ->
    let va = operand_values doc visible env ~pos ~last ctx a in
    let vb = operand_values doc visible env ~pos ~last ctx b in
    List.exists (fun x -> List.exists (fun y -> cmp_values op x y) vb) va
  | Ast.Exists_path rp -> eval_rel_path doc visible ctx rp <> []
  | Ast.Exists_attr a -> Tree.attr doc ctx a <> None
  | Ast.Index n -> pos = n
  | Ast.Fn_bool (name, [ a; b ]) -> (
    match
      ( operand_values doc visible env ~pos ~last ctx a,
        operand_values doc visible env ~pos ~last ctx b )
    with
    | va :: _, vb :: _ ->
      string_fn name (Value.to_string va) (Value.to_string vb)
    | _ -> false)
  | Ast.Fn_bool (name, args) ->
    invalid_arg
      (Printf.sprintf "Eval: %s() expects 2 arguments, got %d" name
         (List.length args))
  | Ast.And (a, b) ->
    eval_bool doc visible env ~pos ~last ctx a
    && eval_bool doc visible env ~pos ~last ctx b
  | Ast.Or (a, b) ->
    eval_bool doc visible env ~pos ~last ctx a
    || eval_bool doc visible env ~pos ~last ctx b
  | Ast.Not a -> not (eval_bool doc visible env ~pos ~last ctx a)

(* Apply one predicate to a candidate list, XPath-style: positions are
   1-based indices into the current list, recomputed after each predicate. *)
let apply_pred doc visible candidates (p : Ast.pred) =
  let last = List.length candidates in
  match p with
  | Ast.Bind (x, src) ->
    (* Multi-valued sources (e.g. Member/@ref) yield one embedding per
       value — each corresponds to a different mapping of the predicate's
       pattern nodes (Definition 6). *)
    List.concat_map
      (fun (i, (n, env)) ->
        operand_values doc visible env ~pos:i ~last n src
        |> List.map (fun v -> (n, (x, v) :: env)))
      (List.mapi (fun i c -> (i + 1, c)) candidates)
  | _ ->
    List.filter_map
      (fun (i, (n, env)) ->
        if eval_bool doc visible env ~pos:i ~last n p then Some (n, env)
        else None)
      (List.mapi (fun i c -> (i + 1, c)) candidates)

let apply_step doc visible contexts (step : Ast.step) =
  List.concat_map
    (fun (ctx, env) ->
      let candidates =
        (* //Name from the document node is the hot path of the Rewrite
           strategy; serve it from the cached name index instead of a full
           traversal. *)
        match step.Ast.axis, step.Ast.test with
        | Ast.Descendant, Ast.Name name when ctx = Tree.no_node ->
          Tree.index_lookup (Tree.name_index_for doc) name
          |> List.filter visible
        | _ ->
          axis_nodes doc visible ctx step.Ast.axis
          |> List.filter (test_matches doc step.Ast.test)
      in
      let candidates = List.map (fun n -> (n, env)) candidates in
      List.fold_left (apply_pred doc visible) candidates step.Ast.preds)
    contexts

let eval ?(require_uri = true) ?(guards = no_guards) doc (pattern : Ast.pattern) =
  (* An explicit [$r := @id] is the implicit result binding of Definition 4
     condition (3) spelled out (the pattern φ2 of Example 3), so the "r"
     column is never duplicated; "node" is likewise reserved. *)
  let vars =
    List.filter (fun v -> v <> "r" && v <> "node") (Ast.variables pattern)
  in
  let finals =
    List.fold_left
      (apply_step doc guards.visible)
      [ (Tree.no_node, guards.env) ]
      pattern
  in
  let table = Table.create (("node" :: "r" :: vars)) in
  List.iter
    (fun (n, env) ->
      let uri = Tree.uri doc n in
      match uri, require_uri with
      | None, true -> ()   (* condition (3) of Definition 4 *)
      | _ ->
        let r =
          match uri with
          | Some u -> Value.Str u
          | None -> Value.Str (Printf.sprintf "#%d" n)
        in
        let row =
          Array.of_list
            (Value.Node n :: r
            :: List.map
                 (fun x ->
                   match List.assoc_opt x env with
                   | Some v -> v
                   | None ->
                     (* Bindings are top-level step predicates, so a surviving
                        candidate always carries all of them. *)
                     assert false)
                 vars)
        in
        Table.add_row table row)
    finals;
  Table.distinct table

let eval_state ?require_uri st pattern =
  eval ?require_uri ~guards:(state_guards st) (Doc_state.doc st) pattern

let matching_nodes ?(guards = no_guards) doc pattern =
  let t = eval ~require_uri:false ~guards doc pattern in
  Table.rows t
  |> List.filter_map (fun row ->
         match Table.get t row "node" with
         | Value.Node n -> Some n
         | Value.Str _ | Value.Int _ -> None)
  |> List.sort_uniq compare
