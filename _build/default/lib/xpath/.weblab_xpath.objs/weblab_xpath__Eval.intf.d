lib/xpath/eval.mli: Ast Doc_state Table Tree Value Weblab_relalg Weblab_xml
