lib/xpath/eval.ml: Array Ast Doc_state List Option Printf String Table Tree Value Weblab_relalg Weblab_xml
