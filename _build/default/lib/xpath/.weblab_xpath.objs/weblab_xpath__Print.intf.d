lib/xpath/print.mli: Ast
