lib/xpath/print.ml: Ast List Printf String
