lib/xpath/parser.mli: Ast Lexer
