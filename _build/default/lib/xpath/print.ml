(* Pretty-printer for patterns, producing the paper's concrete syntax.
   [Parser.pattern (Print.pattern_to_string p)] yields a pattern equal to
   [p] (round-trip property, tested with qcheck). *)

open Ast

(* Named form of an axis (without separators). *)
let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Self -> "self"
  | Descendant_or_self -> "descendant-or-self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"

let axis_to_string = function
  | Child -> "/"
  | Descendant -> "//"
  | a -> "/" ^ axis_name a ^ "::"

let nametest_to_string = function
  | Name n -> n
  | Any -> "*"

let cmpop_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rel_path_to_string rp =
  List.mapi
    (fun i { raxis; rtest } ->
      let sep =
        match raxis with
        | Child -> if i = 0 then "" else "/"
        | Descendant -> "//"
        | a ->
          (if i = 0 then "" else "/") ^ axis_name a ^ "::"
      in
      sep ^ nametest_to_string rtest)
    rp
  |> String.concat ""

let rec operand_to_string = function
  | Attr a -> "@" ^ a
  | Lit s -> Printf.sprintf "'%s'" s
  | Num n -> string_of_int n
  | Var x -> "$" ^ x
  | Position -> "position()"
  | Last -> "last()"
  | Count rp -> Printf.sprintf "count(%s)" (rel_path_to_string rp)
  | Strlen a -> Printf.sprintf "string-length(%s)" (operand_to_string a)
  | Path rp -> rel_path_to_string rp
  | Path_attr (rp, a) -> rel_path_to_string rp ^ "/@" ^ a
  | Skolem (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map operand_to_string args))

(* Precedence: or < and < not/atom.  Parenthesize via not(...) only, since
   the grammar has no grouping parentheses for bare boolean expressions. *)
let rec pred_to_string = function
  | Bind (x, src) -> Printf.sprintf "$%s := %s" x (operand_to_string src)
  | Cmp (a, op, b) ->
    Printf.sprintf "%s %s %s" (operand_to_string a) (cmpop_to_string op)
      (operand_to_string b)
  | Exists_path rp -> rel_path_to_string rp
  | Exists_attr a -> "@" ^ a
  | Index n -> string_of_int n
  | Fn_bool (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map operand_to_string args))
  | And (a, b) -> Printf.sprintf "%s and %s" (and_operand a) (and_operand b)
  | Or (a, b) -> Printf.sprintf "%s or %s" (pred_to_string a) (pred_to_string b)
  | Not a -> Printf.sprintf "not(%s)" (pred_to_string a)

and and_operand p =
  match p with
  | Or _ -> Printf.sprintf "not(not(%s))" (pred_to_string p)
  | _ -> pred_to_string p

let step_to_string ~first { axis; test; preds } =
  let sep = axis_to_string axis in
  ignore first;
  sep
  ^ nametest_to_string test
  ^ String.concat "" (List.map (fun p -> "[" ^ pred_to_string p ^ "]") preds)

let pattern_to_string (p : pattern) =
  String.concat ""
    (List.mapi (fun i s -> step_to_string ~first:(i = 0) s) p)
