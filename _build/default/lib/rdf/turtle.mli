(** Turtle and N-Triples serialization, plus an N-Triples reader for
    round-trips — the exchange surface the paper's Sesame store exposes
    for PROV graphs. *)

val abbreviate : (string * string) list -> string -> string option
(** [abbreviate prefixes iri] is the qname when some prefix applies and
    the local part is a plain name. *)

val term_to_turtle : (string * string) list -> Term.t -> string

val to_turtle : ?prefixes:(string * string) list -> Triple_store.t -> string
(** Grouped by subject and predicate, with @prefix declarations
    ({!Prov_vocab.prefixes} by default). *)

val to_ntriples : Triple_store.t -> string
(** One triple per line. *)

exception Parse_error of string

val parse_ntriples : string -> Triple_store.t
(** Minimal N-Triples reader: IRIs, blank nodes, literals with optional
    datatype; [#] comment lines ignored.
    @raise Parse_error on malformed input. *)
