(** In-memory RDF triple store with S/P/O hash indexes and basic graph
    pattern matching — the stand-in for the paper's Sesame repository. *)

type triple = Term.t * Term.t * Term.t

type t

val create : unit -> t

val add : t -> triple -> unit
(** Idempotent (set semantics). *)

val mem : t -> triple -> bool

val size : t -> int

val triples : t -> triple list
(** In insertion order. *)

val iter : t -> (triple -> unit) -> unit

(** {1 Pattern lookup} *)

type pattern = Term.t option * Term.t option * Term.t option
(** [None] is a wildcard. *)

val find : t -> pattern -> triple list
(** Uses the most selective available index. *)

val count : t -> pattern -> int

(** {1 Basic graph patterns}

    Variables are written as strings; a BGP is a list of triple patterns
    where each position is either a constant term or a variable. *)

type bgp_term =
  | Const of Term.t
  | Var of string

val query : t -> (bgp_term * bgp_term * bgp_term) list -> Weblab_relalg.Table.t
(** Solutions of the conjunctive pattern, one column per variable.  Term
    bindings are encoded as their N-Triples string in the result table. *)

val solutions : t -> (bgp_term * bgp_term * bgp_term) list ->
  (string * Term.t) list list
(** The raw variable environments, for callers that post-process terms
    (SPARQL FILTER/ORDER BY). *)

val bgp_variables : (bgp_term * bgp_term * bgp_term) list -> string list
(** Variables of a pattern, first-occurrence order. *)

val table_of_solutions :
  string list -> (string * Term.t) list list -> Weblab_relalg.Table.t
