(** A SPARQL subset — PREFIX declarations, SELECT/ASK over one basic graph
    pattern, FILTER constraints, ORDER BY and LIMIT — sufficient to query
    generated provenance graphs the way the Figure 5 Request Manager
    queries its SPARQL endpoint.

    {v
    query    ::= prefix* (select | ask)
    select   ::= SELECT [DISTINCT] (STAR | var+) WHERE group
                 [ORDER BY [ASC|DESC] var] [LIMIT n]
    ask      ::= ASK [WHERE] group
    group    ::= { (triple | FILTER(operand CMP operand))* }
    term     ::= <iri> | prefix:local | ?var | "literal" | a
    v}

    The {!Prov_vocab.prefixes} (prov, rdf, rdfs, xsd, wl) are
    predeclared.  FILTER and ORDER BY compare lexical forms, numerically
    when both sides parse as integers. *)

exception Error of string

type operand =
  | O_var of string
  | O_lit of string
  | O_num of int

type filter = operand * string * operand
(** lhs, comparison operator, rhs. *)

type form =
  | Select of string list option * bool
      (** projected variables ([None] for all), DISTINCT flag *)
  | Ask

type order = { by : string; descending : bool }

type query = {
  form : form;
  where :
    (Triple_store.bgp_term * Triple_store.bgp_term * Triple_store.bgp_term) list;
  filters : filter list;
  order : order option;
  limit : int option;
}

val parse : string -> query
(** @raise Error on malformed queries or unknown prefixes. *)

type result =
  | Solutions of Weblab_relalg.Table.t
  | Boolean of bool

val run_query : Triple_store.t -> query -> result

val run_result : Triple_store.t -> string -> result
(** Parse and evaluate. *)

val run : Triple_store.t -> string -> Weblab_relalg.Table.t
(** SELECT queries only: the solution table (one column per projected
    variable, term bindings in N-Triples syntax).
    @raise Error on an ASK query. *)

val ask : Triple_store.t -> string -> bool
(** ASK queries only. @raise Error on a SELECT query. *)
