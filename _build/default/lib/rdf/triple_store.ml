type triple = Term.t * Term.t * Term.t

module Term_table = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

type t = {
  mutable all : triple list;  (* reversed insertion order *)
  mutable size : int;
  by_subject : triple list ref Term_table.t;
  by_predicate : triple list ref Term_table.t;
  by_object : triple list ref Term_table.t;
  dedup : (string, unit) Hashtbl.t;
}

let create () =
  {
    all = [];
    size = 0;
    by_subject = Term_table.create 64;
    by_predicate = Term_table.create 64;
    by_object = Term_table.create 64;
    dedup = Hashtbl.create 64;
  }

let key (s, p, o) =
  String.concat " " [ Term.to_ntriples s; Term.to_ntriples p; Term.to_ntriples o ]

let index_add table term triple =
  match Term_table.find_opt table term with
  | Some cell -> cell := triple :: !cell
  | None -> Term_table.add table term (ref [ triple ])

let add t ((s, p, o) as triple) =
  let k = key triple in
  if not (Hashtbl.mem t.dedup k) then begin
    Hashtbl.add t.dedup k ();
    t.all <- triple :: t.all;
    t.size <- t.size + 1;
    index_add t.by_subject s triple;
    index_add t.by_predicate p triple;
    index_add t.by_object o triple
  end

let mem t triple = Hashtbl.mem t.dedup (key triple)

let size t = t.size

let triples t = List.rev t.all

let iter t f = List.iter f (triples t)

type pattern = Term.t option * Term.t option * Term.t option

let index_find table term =
  match Term_table.find_opt table term with Some cell -> !cell | None -> []

let matches (s, p, o) (ps, pp, po) =
  (match ps with Some x -> Term.equal x s | None -> true)
  && (match pp with Some x -> Term.equal x p | None -> true)
  && match po with Some x -> Term.equal x o | None -> true

let find t ((ps, pp, po) as pat) =
  (* Choose the most selective bound position; subjects and objects are
     usually more selective than predicates. *)
  let candidates =
    match ps, po, pp with
    | Some s, _, _ -> index_find t.by_subject s
    | None, Some o, _ -> index_find t.by_object o
    | None, None, Some p -> index_find t.by_predicate p
    | None, None, None -> t.all
  in
  List.filter (fun tr -> matches tr pat) (List.rev candidates)

let count t pat = List.length (find t pat)

type bgp_term =
  | Const of Term.t
  | Var of string

open Weblab_relalg

let term_value term = Value.Str (Term.to_ntriples term)

(* Evaluate a conjunctive pattern left to right, returning raw variable
   environments.  Each step instantiates the pattern with the bindings of
   the current row and probes the store through [find]. *)
let solutions t bgp : (string * Term.t) list list =
  let vars_of (a, b, c) =
    List.filter_map (function Var v -> Some v | Const _ -> None) [ a; b; c ]
  in
  let all_vars =
    List.fold_left
      (fun acc tp ->
        List.fold_left (fun acc v -> if List.mem v acc then acc else acc @ [ v ])
          acc (vars_of tp))
      [] bgp
  in
  let solutions =
    List.fold_left
      (fun rows (a, b, c) ->
        List.concat_map
          (fun (env : (string * Term.t) list) ->
            let resolve = function
              | Const term -> Some term
              | Var v -> List.assoc_opt v env
            in
            let pat = (resolve a, resolve b, resolve c) in
            find t pat
            |> List.filter_map (fun (s, p, o) ->
                   (* Bind still-free variables; a variable used twice in one
                      pattern must match the same term. *)
                   let bind env (bt, term) =
                     match env, bt with
                     | None, _ -> None
                     | Some env, Const _ -> Some env
                     | Some env, Var v -> (
                       match List.assoc_opt v env with
                       | Some existing ->
                         if Term.equal existing term then Some env else None
                       | None -> Some ((v, term) :: env))
                   in
                   List.fold_left bind (Some env) [ (a, s); (b, p); (c, o) ]))
          rows)
      [ [] ] bgp
  in
  ignore all_vars;
  solutions

(* All variables of a BGP, first-occurrence order. *)
let bgp_variables bgp =
  let vars_of (a, b, c) =
    List.filter_map (function Var v -> Some v | Const _ -> None) [ a; b; c ]
  in
  List.fold_left
    (fun acc tp ->
      List.fold_left
        (fun acc v -> if List.mem v acc then acc else acc @ [ v ])
        acc (vars_of tp))
    [] bgp

let table_of_solutions vars sols =
  let table = Table.create vars in
  List.iter
    (fun env ->
      Table.add_row table
        (Array.of_list
           (List.map
              (fun v ->
                match List.assoc_opt v env with
                | Some term -> term_value term
                | None -> Value.Str "")
              vars)))
    sols;
  Table.distinct table

let query t bgp = table_of_solutions (bgp_variables bgp) (solutions t bgp)
