(** RDF terms.  Literals carry an optional datatype IRI (plain literals
    are xsd:string per RDF 1.1, represented as [None]). *)

type t =
  | Iri of string
  | Lit of string * string option  (** lexical form, datatype IRI *)
  | Bnode of string

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

(** {1 Constructors} *)

val iri : string -> t

val lit : string -> t
(** A plain literal. *)

val int_lit : int -> t
(** An xsd:integer literal. *)

val bnode : string -> t

val xsd_integer : string

val xsd_date_time : string

(** {1 Serialization} *)

val escape_lit : string -> string
(** Escape a literal's lexical form for N-Triples/Turtle. *)

val to_ntriples : t -> string
(** The N-Triples concrete syntax of the term. *)

val pp : Format.formatter -> t -> unit
