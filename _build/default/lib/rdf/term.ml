(* RDF terms.  Literals carry an optional datatype IRI (plain literals are
   xsd:string by RDF 1.1, represented here as [None] for compactness). *)

type t =
  | Iri of string
  | Lit of string * string option  (* lexical form, datatype IRI *)
  | Bnode of string

let equal a b =
  match a, b with
  | Iri x, Iri y -> String.equal x y
  | Bnode x, Bnode y -> String.equal x y
  | Lit (x, dx), Lit (y, dy) -> String.equal x y && Option.equal String.equal dx dy
  | (Iri _ | Lit _ | Bnode _), _ -> false

let compare a b =
  let tag = function Iri _ -> 0 | Lit _ -> 1 | Bnode _ -> 2 in
  match a, b with
  | Iri x, Iri y -> String.compare x y
  | Bnode x, Bnode y -> String.compare x y
  | Lit (x, dx), Lit (y, dy) ->
    let c = String.compare x y in
    if c <> 0 then c else Option.compare String.compare dx dy
  | _ -> Int.compare (tag a) (tag b)

let hash = function
  | Iri s -> Hashtbl.hash (0, s)
  | Lit (s, d) -> Hashtbl.hash (1, s, d)
  | Bnode s -> Hashtbl.hash (2, s)

let xsd_integer = "http://www.w3.org/2001/XMLSchema#integer"
let xsd_date_time = "http://www.w3.org/2001/XMLSchema#dateTime"

let iri s = Iri s
let lit s = Lit (s, None)
let int_lit i = Lit (string_of_int i, Some xsd_integer)
let bnode s = Bnode s

let escape_lit s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* N-Triples concrete syntax of a term. *)
let to_ntriples = function
  | Iri s -> Printf.sprintf "<%s>" s
  | Bnode s -> Printf.sprintf "_:%s" s
  | Lit (s, None) -> Printf.sprintf "\"%s\"" (escape_lit s)
  | Lit (s, Some dt) -> Printf.sprintf "\"%s\"^^<%s>" (escape_lit s) dt

let pp ppf t = Fmt.string ppf (to_ntriples t)
