(* A SPARQL subset — PREFIX declarations, SELECT/ASK over one basic graph
   pattern with FILTER constraints, ORDER BY and LIMIT — sufficient to
   query generated provenance graphs the way the Request Manager
   queries its Sesame SPARQL endpoint.

   Supported grammar:

   {v
   query    ::= prefix* (select | ask)
   select   ::= SELECT [DISTINCT] ( STAR | var+ ) WHERE group
                [ORDER BY [ASC|DESC] var] [LIMIT n]
   ask      ::= ASK group
   group    ::= { (triple | filter)* }
   triple   ::= term term term [.]
   filter   ::= FILTER ( operand CMP operand )
   term     ::= <iri> | prefix:local | ?var | "literal" | a
   operand  ::= ?var | "literal" | number
   CMP      ::= = | != | < | <= | > | >=
   v} *)

exception Error of string

type token =
  | TIri of string
  | TQname of string * string
  | TVar of string
  | TLit of string
  | TNum of int
  | TName of string      (* bare keyword: SELECT, WHERE, PREFIX, a *)
  | TLbrace
  | TRbrace
  | TLparen
  | TRparen
  | TDot
  | TStar
  | TCmp of string
  | TEof

let tokenize s =
  let n = String.length s in
  let rec loop i acc =
    if i >= n then List.rev (TEof :: acc)
    else
      let c = s.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then loop (i + 1) acc
      else if c = '{' then loop (i + 1) (TLbrace :: acc)
      else if c = '}' then loop (i + 1) (TRbrace :: acc)
      else if c = '(' then loop (i + 1) (TLparen :: acc)
      else if c = ')' then loop (i + 1) (TRparen :: acc)
      else if c = '.' then loop (i + 1) (TDot :: acc)
      else if c = '*' then loop (i + 1) (TStar :: acc)
      else if c = '!' && i + 1 < n && s.[i + 1] = '=' then
        loop (i + 2) (TCmp "!=" :: acc)
      else if c = '=' then loop (i + 1) (TCmp "=" :: acc)
      else if c = '<' && i + 1 < n && s.[i + 1] = '=' then
        loop (i + 2) (TCmp "<=" :: acc)
      else if c = '>' && i + 1 < n && s.[i + 1] = '=' then
        loop (i + 2) (TCmp ">=" :: acc)
      else if c = '>' then loop (i + 1) (TCmp ">" :: acc)
      else if c >= '0' && c <= '9' then begin
        let rec stop j = if j < n && s.[j] >= '0' && s.[j] <= '9' then stop (j + 1) else j in
        let j = stop i in
        loop j (TNum (int_of_string (String.sub s i (j - i))) :: acc)
      end
      else if c = '<' then begin
        (* "<" starts an IRI unless followed by whitespace, a digit, '=' or
           '?', in which case it is the less-than operator. *)
        if i + 1 < n
           && (s.[i + 1] = ' ' || s.[i + 1] = '\t' || s.[i + 1] = '?'
              || (s.[i + 1] >= '0' && s.[i + 1] <= '9'))
        then loop (i + 1) (TCmp "<" :: acc)
        else
          match String.index_from_opt s i '>' with
          | Some j -> loop (j + 1) (TIri (String.sub s (i + 1) (j - i - 1)) :: acc)
          | None -> raise (Error "unterminated IRI")
      end
      else if c = '?' || c = '$' then begin
        let rec stop j =
          if
            j < n
            && ((s.[j] >= 'a' && s.[j] <= 'z')
               || (s.[j] >= 'A' && s.[j] <= 'Z')
               || (s.[j] >= '0' && s.[j] <= '9')
               || s.[j] = '_')
          then stop (j + 1)
          else j
        in
        let j = stop (i + 1) in
        if j = i + 1 then raise (Error "empty variable name");
        loop j (TVar (String.sub s (i + 1) (j - i - 1)) :: acc)
      end
      else if c = '"' then begin
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then raise (Error "unterminated literal")
          else if s.[j] = '\\' && j + 1 < n then begin
            Buffer.add_char buf s.[j + 1];
            scan (j + 2)
          end
          else if s.[j] = '"' then j + 1
          else begin
            Buffer.add_char buf s.[j];
            scan (j + 1)
          end
        in
        let j = scan (i + 1) in
        loop j (TLit (Buffer.contents buf) :: acc)
      end
      else begin
        (* Bare name, possibly a qname prefix:local. *)
        let is_name_char c =
          (c >= 'a' && c <= 'z')
          || (c >= 'A' && c <= 'Z')
          || (c >= '0' && c <= '9')
          || c = '_' || c = '-'
        in
        let rec stop j = if j < n && is_name_char s.[j] then stop (j + 1) else j in
        let j = stop i in
        if j = i then raise (Error (Printf.sprintf "unexpected character %C" c));
        let name = String.sub s i (j - i) in
        if j < n && s.[j] = ':' then begin
          let k = stop (j + 1) in
          loop k (TQname (name, String.sub s (j + 1) (k - j - 1)) :: acc)
        end
        else loop j (TName name :: acc)
      end
  in
  loop 0 []

type operand =
  | O_var of string
  | O_lit of string
  | O_num of int

type filter = operand * string * operand   (* lhs, cmp, rhs *)

type form =
  | Select of string list option * bool    (* projected vars (None for all), distinct *)
  | Ask

type order = { by : string; descending : bool }

type query = {
  form : form;
  where : (Triple_store.bgp_term * Triple_store.bgp_term * Triple_store.bgp_term) list;
  filters : filter list;
  order : order option;
  limit : int option;
}

let parse text =
  let toks = ref (tokenize text) in
  let peek () = match !toks with t :: _ -> t | [] -> TEof in
  let advance () = match !toks with _ :: rest -> toks := rest | [] -> () in
  let prefixes = ref Prov_vocab.prefixes in
  let is_kw k = function
    | TName name -> String.lowercase_ascii name = k
    | _ -> false
  in
  let keyword k =
    if is_kw k (peek ()) then advance ()
    else raise (Error (Printf.sprintf "expected keyword %s" (String.uppercase_ascii k)))
  in
  (* PREFIX declarations *)
  let rec read_prefixes () =
    if is_kw "prefix" (peek ()) then begin
      advance ();
      match peek () with
      | TQname (p, "") -> (
        advance ();
        match peek () with
        | TIri iri ->
          advance ();
          prefixes := (p, iri) :: !prefixes;
          read_prefixes ()
        | _ -> raise (Error "expected <iri> in PREFIX declaration"))
      | _ -> raise (Error "expected prefix: in PREFIX declaration")
    end
  in
  read_prefixes ();
  (* query form *)
  let form =
    if is_kw "ask" (peek ()) then begin
      advance ();
      Ask
    end
    else begin
      keyword "select";
      let distinct =
        if is_kw "distinct" (peek ()) then begin
          advance ();
          true
        end
        else false
      in
      match peek () with
      | TStar ->
        advance ();
        Select (None, distinct)
      | TVar _ ->
        let rec vars acc =
          match peek () with
          | TVar v ->
            advance ();
            vars (v :: acc)
          | _ -> List.rev acc
        in
        Select (Some (vars []), distinct)
      | _ -> raise (Error "expected '*' or variables after SELECT")
    end
  in
  (match form with
   | Select _ -> keyword "where"
   | Ask -> if is_kw "where" (peek ()) then advance ());
  (match peek () with
   | TLbrace -> advance ()
   | _ -> raise (Error "expected '{' opening the graph pattern"));
  let term () =
    match peek () with
    | TIri iri ->
      advance ();
      Triple_store.Const (Term.Iri iri)
    | TQname (p, local) -> (
      advance ();
      match List.assoc_opt p !prefixes with
      | Some ns -> Triple_store.Const (Term.Iri (ns ^ local))
      | None -> raise (Error (Printf.sprintf "unknown prefix %s:" p)))
    | TVar v ->
      advance ();
      Triple_store.Var v
    | TLit l ->
      advance ();
      Triple_store.Const (Term.Lit (l, None))
    | TName "a" ->
      advance ();
      Triple_store.Const Prov_vocab.rdf_type
    | _ -> raise (Error "expected a term in graph pattern")
  in
  let operand () =
    match peek () with
    | TVar v -> advance (); O_var v
    | TLit l -> advance (); O_lit l
    | TNum n -> advance (); O_num n
    | _ -> raise (Error "expected a variable, literal or number in FILTER")
  in
  let rec group triples filters =
    match peek () with
    | TRbrace ->
      advance ();
      (List.rev triples, List.rev filters)
    | t when is_kw "filter" t ->
      advance ();
      (match peek () with
       | TLparen -> advance ()
       | _ -> raise (Error "expected '(' after FILTER"));
      let lhs = operand () in
      let op =
        match peek () with
        | TCmp c -> advance (); c
        | _ -> raise (Error "expected a comparison operator in FILTER")
      in
      let rhs = operand () in
      (match peek () with
       | TRparen -> advance ()
       | _ -> raise (Error "expected ')' closing FILTER"));
      (match peek () with TDot -> advance () | _ -> ());
      group triples ((lhs, op, rhs) :: filters)
    | _ ->
      let s = term () in
      let p = term () in
      let o = term () in
      (match peek () with
       | TDot -> advance ()
       | TRbrace -> ()
       | t when is_kw "filter" t -> ()
       | _ -> raise (Error "expected '.', FILTER or '}' after a triple pattern"));
      group ((s, p, o) :: triples) filters
  in
  let where, filters = group [] [] in
  (* solution modifiers *)
  let order =
    if is_kw "order" (peek ()) then begin
      advance ();
      keyword "by";
      let descending =
        if is_kw "desc" (peek ()) then begin
          advance ();
          true
        end
        else begin
          if is_kw "asc" (peek ()) then advance ();
          false
        end
      in
      (* allow DESC(?v) / ASC(?v) parenthesized or bare ?v *)
      let parenthesized = peek () = TLparen in
      if parenthesized then advance ();
      match peek () with
      | TVar v ->
        advance ();
        if parenthesized then (match peek () with
          | TRparen -> advance ()
          | _ -> raise (Error "expected ')' after ORDER BY variable"));
        Some { by = v; descending }
      | _ -> raise (Error "expected a variable after ORDER BY")
    end
    else None
  in
  let limit =
    if is_kw "limit" (peek ()) then begin
      advance ();
      match peek () with
      | TNum n -> advance (); Some n
      | _ -> raise (Error "expected a number after LIMIT")
    end
    else None
  in
  (match peek () with
   | TEof -> ()
   | _ -> raise (Error "trailing input after query"));
  { form; where; filters; order; limit }

(* FILTER/ORDER BY compare on the lexical form, numerically when both
   sides are numeric. *)
let term_lexical = function
  | Term.Lit (s, _) -> s
  | Term.Iri s -> s
  | Term.Bnode s -> s

let operand_string env = function
  | O_var v -> Option.map term_lexical (List.assoc_opt v env)
  | O_lit l -> Some l
  | O_num n -> Some (string_of_int n)

let compare_strings a b =
  match int_of_string_opt (String.trim a), int_of_string_opt (String.trim b) with
  | Some x, Some y -> compare x y
  | _ -> String.compare a b

let filter_holds env (lhs, op, rhs) =
  match operand_string env lhs, operand_string env rhs with
  | Some a, Some b -> (
    let c = compare_strings a b in
    match op with
    | "=" -> c = 0
    | "!=" -> c <> 0
    | "<" -> c < 0
    | "<=" -> c <= 0
    | ">" -> c > 0
    | ">=" -> c >= 0
    | _ -> false)
  | _ -> false

type result =
  | Solutions of Weblab_relalg.Table.t
  | Boolean of bool

let run_query store (q : query) : result =
  let sols = Triple_store.solutions store q.where in
  let sols = List.filter (fun env -> List.for_all (filter_holds env) q.filters) sols in
  match q.form with
  | Ask -> Boolean (sols <> [])
  | Select (sel, _distinct) ->
    let sols =
      match q.order with
      | None -> sols
      | Some { by; descending } ->
        let key env =
          match List.assoc_opt by env with
          | Some t -> term_lexical t
          | None -> ""
        in
        let cmp a b = compare_strings (key a) (key b) in
        let sorted = List.stable_sort cmp sols in
        if descending then List.rev sorted else sorted
    in
    let vars =
      match sel with
      | Some vars -> vars
      | None -> Triple_store.bgp_variables q.where
    in
    let table = Triple_store.table_of_solutions vars sols in
    let table =
      match q.limit with
      | None -> table
      | Some n ->
        let open Weblab_relalg in
        let limited = Table.create (Table.columns table) in
        List.iteri (fun i row -> if i < n then Table.add_row limited row)
          (Table.rows table);
        limited
    in
    Solutions table

let run_result store text = run_query store (parse text)

(* Backwards-compatible entry point: SELECT queries only. *)
let run store text =
  match run_result store text with
  | Solutions t -> t
  | Boolean _ -> raise (Error "ASK queries return a boolean; use run_result")

let ask store text =
  match run_result store text with
  | Boolean b -> b
  | Solutions _ -> raise (Error "expected an ASK query")
