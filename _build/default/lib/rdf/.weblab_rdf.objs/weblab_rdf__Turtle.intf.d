lib/rdf/turtle.mli: Term Triple_store
