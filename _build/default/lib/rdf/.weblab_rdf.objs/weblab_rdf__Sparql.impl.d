lib/rdf/sparql.ml: Buffer List Option Printf Prov_vocab String Table Term Triple_store Weblab_relalg
