lib/rdf/prov_vocab.ml: Printf String Term
