lib/rdf/turtle.ml: Buffer List Printf Prov_vocab String Term Triple_store
