lib/rdf/term.ml: Buffer Fmt Hashtbl Int Option Printf String
