lib/rdf/sparql.mli: Triple_store Weblab_relalg
