lib/rdf/triple_store.mli: Term Weblab_relalg
