lib/rdf/triple_store.ml: Array Hashtbl List String Table Term Value Weblab_relalg
