(* Parser for the FLWOR fragment the Mapper emits (Examples 8 and 9) —
   the inverse of {!Xq_print}: the queries the paper prints can be read
   back and executed.

   Grammar (keywords written bare):

   {v
   flwor  ::= for binding (, binding)*
              [let letdef (, letdef)*]
              [where cond (and cond)*]
              return constructor
   binding::= $v in path
   letdef ::= $v := expr
   path   ::= [$v] ((/ | //) [axis::] nametest)+
   expr   ::= $v/@name | $v | string | number | f(expr, ...)
   cond   ::= expr CMP expr | path CMP expr | path | $v/@name
            | not(cond) | cond or cond          (and at the top level)
   constructor ::= <prov>{expr} -> {expr}</prov>
                 | <emb> (<n>{expr}</n>)* </emb>
   v} *)

open Weblab_xpath

exception Error of { pos : int; message : string }

type state = { mutable toks : (Lexer.token * int) list }

let fail st message =
  let pos = match st.toks with (_, p) :: _ -> p | [] -> 0 in
  raise (Error { pos; message })

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Lexer.EOF

let peek2 st = match st.toks with _ :: (t, _) :: _ -> t | _ -> Lexer.EOF

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string tok)
         (Lexer.token_to_string (peek st)))

let name st =
  match peek st with
  | Lexer.NAME n -> advance st; n
  | t -> fail st (Printf.sprintf "expected a name, found %s" (Lexer.token_to_string t))

let keyword st k =
  match peek st with
  | Lexer.NAME n when String.equal n k -> advance st
  | t ->
    fail st
      (Printf.sprintf "expected keyword '%s', found %s" k
         (Lexer.token_to_string t))

let variable st =
  expect st Lexer.DOLLAR;
  name st

let nametest st =
  match peek st with
  | Lexer.NAME n -> advance st; Ast.Name n
  | Lexer.STAR -> advance st; Ast.Any
  | t ->
    fail st (Printf.sprintf "expected a name test, found %s" (Lexer.token_to_string t))

let axis_nametest st ~default =
  match peek st, peek2 st with
  | Lexer.NAME n, Lexer.AXISSEP -> (
    match Parser.axis_of_name n with
    | Some axis ->
      advance st;
      advance st;
      (axis, nametest st)
    | None -> fail st (Printf.sprintf "unknown axis %s::" n))
  | _ -> (default, nametest st)

(* Steps after a start ('$v' or root). *)
let path_steps st =
  let rec steps acc =
    match peek st with
    | Lexer.SLASH when peek2 st <> Lexer.AT ->
      advance st;
      let axis, t = axis_nametest st ~default:Ast.Child in
      steps ((axis, t) :: acc)
    | Lexer.DSLASH ->
      advance st;
      let t = nametest st in
      steps ((Ast.Descendant, t) :: acc)
    | _ -> List.rev acc
  in
  steps []

(* An expression or path beginning with a variable: $v, $v/@a, $v/Steps. *)
type var_thing =
  | V_expr of Xq_ast.expr
  | V_path of Xq_ast.path

let var_thing st =
  let v = variable st in
  match peek st, peek2 st with
  | Lexer.SLASH, Lexer.AT ->
    advance st;
    advance st;
    V_expr (Xq_ast.Attr_of (v, name st))
  | (Lexer.SLASH | Lexer.DSLASH), _ ->
    let steps = path_steps st in
    if steps = [] then V_expr (Xq_ast.Var_ref v)
    else V_path { Xq_ast.start = `Var v; steps }
  | _ -> V_expr (Xq_ast.Var_ref v)

let rec expr st : Xq_ast.expr =
  match peek st with
  | Lexer.STRING s -> advance st; Xq_ast.String_lit s
  | Lexer.NUMBER n -> advance st; Xq_ast.Int_lit n
  | Lexer.DOLLAR -> (
    match var_thing st with
    | V_expr e -> e
    | V_path _ -> fail st "a node-set path is not a value expression")
  | Lexer.NAME f when peek2 st = Lexer.LPAREN ->
    advance st;
    advance st;
    let rec args acc =
      if peek st = Lexer.RPAREN then begin
        advance st;
        List.rev acc
      end
      else begin
        let a = expr st in
        match peek st with
        | Lexer.COMMA -> advance st; args (a :: acc)
        | Lexer.RPAREN -> advance st; List.rev (a :: acc)
        | t ->
          fail st
            (Printf.sprintf "expected ',' or ')', found %s"
               (Lexer.token_to_string t))
      end
    in
    Xq_ast.Skolem_call (f, args [])
  | t ->
    fail st (Printf.sprintf "expected an expression, found %s" (Lexer.token_to_string t))

let cmpop_of_token = function
  | Lexer.EQ -> Some Ast.Eq
  | Lexer.NEQ -> Some Ast.Neq
  | Lexer.LT -> Some Ast.Lt
  | Lexer.LE -> Some Ast.Le
  | Lexer.GT -> Some Ast.Gt
  | Lexer.GE -> Some Ast.Ge
  | _ -> None

let rec cond st : Xq_ast.cond =
  let a = or_cond st in
  a

and or_cond st =
  let a = atom_cond st in
  match peek st with
  | Lexer.NAME "or" ->
    advance st;
    Xq_ast.Or (a, or_cond st)
  | _ -> a

and atom_cond st =
  match peek st with
  | Lexer.NAME "not" when peek2 st = Lexer.LPAREN ->
    advance st;
    advance st;
    let c = cond st in
    (* allow 'and' inside not(...) *)
    let rec more c =
      match peek st with
      | Lexer.NAME "and" ->
        advance st;
        more (Xq_ast.And (c, cond st))
      | _ -> c
    in
    let c = more c in
    expect st Lexer.RPAREN;
    Xq_ast.Not c
  | Lexer.LPAREN ->
    advance st;
    let c = cond st in
    let rec more c =
      match peek st with
      | Lexer.NAME "and" ->
        advance st;
        more (Xq_ast.And (c, cond st))
      | _ -> c
    in
    let c = more c in
    expect st Lexer.RPAREN;
    c
  | Lexer.DOLLAR -> (
    match var_thing st with
    | V_expr (Xq_ast.Attr_of (v, a) as e) -> (
      match cmpop_of_token (peek st) with
      | Some op ->
        advance st;
        Xq_ast.Cmp (e, op, expr st)
      | None -> Xq_ast.Has_attr (v, a))
    | V_expr e -> (
      match cmpop_of_token (peek st) with
      | Some op ->
        advance st;
        Xq_ast.Cmp (e, op, expr st)
      | None -> fail st "a bare value is not a condition")
    | V_path p -> (
      match cmpop_of_token (peek st) with
      | Some op ->
        advance st;
        Xq_ast.Path_cmp (p, op, expr st)
      | None -> Xq_ast.Exists p))
  | _ ->
    let e = expr st in
    (match cmpop_of_token (peek st) with
     | Some op ->
       advance st;
       Xq_ast.Cmp (e, op, expr st)
     | None -> fail st "expected a comparison")

(* <prov>{e} -> {e}</prov>  |  <emb><c>{e}</c>...</emb> *)
let constructor st =
  expect st Lexer.LT;
  let tag = name st in
  expect st Lexer.GT;
  let close_tag () =
    expect st Lexer.LT;
    expect st Lexer.SLASH;
    let t = name st in
    if not (String.equal t tag) then
      fail st (Printf.sprintf "mismatched closing tag </%s>" t);
    expect st Lexer.GT
  in
  match tag with
  | "prov" ->
    expect st Lexer.LBRACE;
    let e_in = expr st in
    expect st Lexer.RBRACE;
    expect st Lexer.RARROW;
    expect st Lexer.LBRACE;
    let e_out = expr st in
    expect st Lexer.RBRACE;
    close_tag ();
    [ ("in", e_in); ("out", e_out) ]
  | "emb" ->
    let rec cols acc =
      if peek st = Lexer.LT && peek2 st = Lexer.SLASH then begin
        close_tag ();
        List.rev acc
      end
      else begin
        expect st Lexer.LT;
        let c = name st in
        expect st Lexer.GT;
        expect st Lexer.LBRACE;
        let e = expr st in
        expect st Lexer.RBRACE;
        expect st Lexer.LT;
        expect st Lexer.SLASH;
        let c' = name st in
        if not (String.equal c c') then
          fail st (Printf.sprintf "mismatched </%s>" c');
        expect st Lexer.GT;
        cols ((c, e) :: acc)
      end
    in
    cols []
  | t -> fail st (Printf.sprintf "unknown constructor <%s>" t)

let parse_flwor st : Xq_ast.flwor =
  keyword st "for";
  let rec bindings acc =
    let v = variable st in
    keyword st "in";
    let path =
      match peek st with
      | Lexer.DOLLAR -> (
        match var_thing st with
        | V_path p -> p
        | V_expr (Xq_ast.Var_ref w) -> { Xq_ast.start = `Var w; steps = [] }
        | V_expr _ -> fail st "expected a path after 'in'")
      | Lexer.SLASH | Lexer.DSLASH ->
        { Xq_ast.start = `Root; steps = path_steps st }
      | t ->
        fail st (Printf.sprintf "expected a path, found %s" (Lexer.token_to_string t))
    in
    let acc = Xq_ast.For (v, path) :: acc in
    if peek st = Lexer.COMMA then begin
      advance st;
      bindings acc
    end
    else acc
  in
  let clauses = bindings [] in
  let clauses =
    if peek st = Lexer.NAME "let" then begin
      advance st;
      let rec lets acc =
        let v = variable st in
        expect st Lexer.ASSIGN;
        let e = expr st in
        let acc = Xq_ast.Let (v, e) :: acc in
        if peek st = Lexer.COMMA then begin
          advance st;
          lets acc
        end
        else acc
      in
      lets clauses
    end
    else clauses
  in
  let where =
    if peek st = Lexer.NAME "where" then begin
      advance st;
      let rec conds acc =
        let c = cond st in
        if peek st = Lexer.NAME "and" then begin
          advance st;
          conds (c :: acc)
        end
        else List.rev (c :: acc)
      in
      conds []
    end
    else []
  in
  keyword st "return";
  let return_cols = constructor st in
  { Xq_ast.clauses = List.rev clauses; where; return_cols }

let parse (input : string) : Xq_ast.flwor =
  let toks =
    try Lexer.tokenize input
    with Lexer.Error { pos; message } -> raise (Error { pos; message })
  in
  let st = { toks } in
  let q = parse_flwor st in
  (match peek st with
   | Lexer.EOF -> ()
   | t ->
     fail st
       (Printf.sprintf "trailing input after query: %s" (Lexer.token_to_string t)));
  q

let parse_opt input =
  match parse input with
  | q -> Ok q
  | exception Error { pos; message } ->
    Error (Printf.sprintf "XQuery parse error at offset %d: %s" pos message)
