(* Evaluation of the FLWOR fragment over a WebLab document.

   [for] clauses iterate over the node sequence of a path, [let] clauses
   bind computed values, the [where] conjunction filters, and each
   surviving binding produces one row of the result table. *)

open Weblab_xml
open Weblab_relalg

exception Unbound_variable of string

type env = {
  nodes : (string * Tree.node) list;   (* for-bound variables *)
  values : (string * Value.t) list;    (* let-bound variables *)
}

let empty_env = { nodes = []; values = [] }

let node_of env v =
  match List.assoc_opt v env.nodes with
  | Some n -> n
  | None -> raise (Unbound_variable ("$" ^ v))

let test_matches doc test n =
  Tree.is_element doc n
  &&
  match (test : Weblab_xpath.Ast.nametest) with
  | Weblab_xpath.Ast.Any -> true
  | Weblab_xpath.Ast.Name name -> String.equal name (Tree.name doc n)

let axis_nodes doc ctx (axis : Weblab_xpath.Ast.axis) =
  let siblings n ~after =
    let p = Tree.parent doc n in
    if p = Tree.no_node then []
    else begin
      let seen = ref false in
      Tree.children doc p
      |> List.filter (fun k ->
             if k = n then begin
               seen := true;
               false
             end
             else if after then !seen
             else not !seen)
    end
  in
  match axis, ctx with
  | Weblab_xpath.Ast.Child, None -> if Tree.has_root doc then [ Tree.root doc ] else []
  | Weblab_xpath.Ast.Child, Some n -> Tree.children doc n
  | (Weblab_xpath.Ast.Descendant | Weblab_xpath.Ast.Descendant_or_self), None ->
    if Tree.has_root doc then Tree.descendant_or_self doc (Tree.root doc) else []
  | Weblab_xpath.Ast.Descendant, Some n -> Tree.descendants doc n
  | Weblab_xpath.Ast.Descendant_or_self, Some n -> Tree.descendant_or_self doc n
  | Weblab_xpath.Ast.Self, None -> if Tree.has_root doc then [ Tree.root doc ] else []
  | Weblab_xpath.Ast.Self, Some n -> [ n ]
  | ( Weblab_xpath.Ast.Parent | Weblab_xpath.Ast.Ancestor
    | Weblab_xpath.Ast.Ancestor_or_self | Weblab_xpath.Ast.Following_sibling
    | Weblab_xpath.Ast.Preceding_sibling ), None -> []
  | Weblab_xpath.Ast.Parent, Some n ->
    let p = Tree.parent doc n in
    if p = Tree.no_node then [] else [ p ]
  | Weblab_xpath.Ast.Ancestor, Some n -> Tree.ancestors doc n
  | Weblab_xpath.Ast.Ancestor_or_self, Some n -> n :: Tree.ancestors doc n
  | Weblab_xpath.Ast.Following_sibling, Some n -> siblings n ~after:true
  | Weblab_xpath.Ast.Preceding_sibling, Some n -> siblings n ~after:false

let eval_path doc env (p : Xq_ast.path) =
  let starts =
    match p.Xq_ast.start with
    | `Root -> [ None ]
    | `Var v -> [ Some (node_of env v) ]
  in
  let finals =
    List.fold_left
      (fun ctxs (axis, test) ->
        List.concat_map
          (fun ctx ->
            axis_nodes doc ctx axis
            |> List.filter (test_matches doc test)
            |> List.map (fun n -> Some n))
          ctxs)
      starts p.Xq_ast.steps
  in
  List.filter_map (fun x -> x) finals

let rec eval_expr doc env (e : Xq_ast.expr) : Value.t option =
  match e with
  | Xq_ast.Attr_of (v, a) ->
    Option.map (fun s -> Value.Str s) (Tree.attr doc (node_of env v) a)
  | Xq_ast.String_lit s -> Some (Value.Str s)
  | Xq_ast.Int_lit i -> Some (Value.Int i)
  | Xq_ast.Var_ref v -> List.assoc_opt v env.values
  | Xq_ast.Skolem_call (f, args) ->
    let vals = List.map (eval_expr doc env) args in
    if List.exists Option.is_none vals then None
    else
      Some
        (Value.Str
           (Printf.sprintf "%s(%s)" f
              (String.concat ","
                 (List.map (fun v -> Value.to_string (Option.get v)) vals))))

let cmp_values (op : Weblab_xpath.Ast.cmpop) a b =
  match op with
  | Weblab_xpath.Ast.Eq -> Value.equal a b
  | Weblab_xpath.Ast.Neq -> not (Value.equal a b)
  | Weblab_xpath.Ast.Lt | Weblab_xpath.Ast.Le | Weblab_xpath.Ast.Gt
  | Weblab_xpath.Ast.Ge -> (
    let c =
      match Value.as_int a, Value.as_int b with
      | Some x, Some y -> compare x y
      | _ -> String.compare (Value.to_string a) (Value.to_string b)
    in
    match op with
    | Weblab_xpath.Ast.Lt -> c < 0
    | Weblab_xpath.Ast.Le -> c <= 0
    | Weblab_xpath.Ast.Gt -> c > 0
    | Weblab_xpath.Ast.Ge -> c >= 0
    | Weblab_xpath.Ast.Eq | Weblab_xpath.Ast.Neq -> assert false)

let rec eval_cond doc env (c : Xq_ast.cond) =
  match c with
  | Xq_ast.Cmp (a, op, b) -> (
    match eval_expr doc env a, eval_expr doc env b with
    | Some va, Some vb -> cmp_values op va vb
    | _ -> false)
  | Xq_ast.Exists p -> eval_path doc env p <> []
  | Xq_ast.Has_attr (v, a) -> Tree.attr doc (node_of env v) a <> None
  | Xq_ast.Path_cmp (p, op, e) -> (
    match eval_expr doc env e with
    | Some v ->
      eval_path doc env p
      |> List.exists (fun n -> cmp_values op (Value.Str (Tree.string_value doc n)) v)
    | None -> false)
  | Xq_ast.And (a, b) -> eval_cond doc env a && eval_cond doc env b
  | Xq_ast.Or (a, b) -> eval_cond doc env a || eval_cond doc env b
  | Xq_ast.Not a -> not (eval_cond doc env a)

let run doc (q : Xq_ast.flwor) : Table.t =
  let cols = List.map fst q.Xq_ast.return_cols in
  let table = Table.create cols in
  let rec loop env clauses =
    match clauses with
    | [] ->
      if List.for_all (eval_cond doc env) q.Xq_ast.where then begin
        let row =
          List.map
            (fun (_, e) ->
              match eval_expr doc env e with
              | Some v -> v
              | None -> Value.Str "")
            q.Xq_ast.return_cols
        in
        Table.add_row table (Array.of_list row)
      end
    | Xq_ast.For (v, p) :: rest ->
      List.iter
        (fun n -> loop { env with nodes = (v, n) :: env.nodes } rest)
        (eval_path doc env p)
    | Xq_ast.Let (v, e) :: rest -> (
      match eval_expr doc env e with
      | Some value -> loop { env with values = (v, value) :: env.values } rest
      | None -> ()   (* a missing binding attribute kills the embedding *))
    | Xq_ast.Filter c :: rest -> if eval_cond doc env c then loop env rest
  in
  loop empty_env q.Xq_ast.clauses;
  Table.distinct table
