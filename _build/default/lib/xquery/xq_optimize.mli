(** The query optimization of Example 9: when the where clause contains
    [$x1 = $x2] with [$x1 := $v1/@id], [$x2 := $v2/@id], @id a key
    attribute, and $v1/$v2 ranging over the same path, the two
    for-variables denote the same node — so they merge, turning a join
    into a navigation.  Dead lets are then eliminated. *)

val merge_key_joins : ?key_attrs:string list -> Xq_ast.flwor -> Xq_ast.flwor
(** Iterate the merge to a fixpoint, then clean up.  [key_attrs] defaults
    to [\["id"\]] — the justification being that @id is of type ID.
    Semantics-preserving (tested against the unoptimized query). *)

val eliminate_dead_lets : Xq_ast.flwor -> Xq_ast.flwor
(** Drop let-clauses whose variable is referenced nowhere. *)

val subst_query : from_var:string -> to_var:string -> Xq_ast.flwor -> Xq_ast.flwor
(** Substitute one for-variable for another everywhere (paths, conditions,
    lets, return columns). *)

val push_filters : Xq_ast.flwor -> Xq_ast.flwor
(** Selection pushdown: move each where-conjunct to the earliest point at
    which all its variables are bound ({!Xq_ast.Filter} clauses), pruning
    embeddings before later for-clauses multiply them.
    Semantics-preserving (tested). *)

val optimize : ?key_attrs:string list -> Xq_ast.flwor -> Xq_ast.flwor
(** {!merge_key_joins} followed by {!push_filters}. *)
