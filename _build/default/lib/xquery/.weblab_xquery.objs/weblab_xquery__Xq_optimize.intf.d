lib/xquery/xq_optimize.mli: Xq_ast
