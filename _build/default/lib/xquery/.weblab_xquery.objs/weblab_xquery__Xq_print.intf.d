lib/xquery/xq_print.mli: Xq_ast
