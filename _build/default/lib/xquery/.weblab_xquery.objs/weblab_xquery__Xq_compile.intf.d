lib/xquery/xq_compile.mli: Ast Weblab_xpath Xq_ast
