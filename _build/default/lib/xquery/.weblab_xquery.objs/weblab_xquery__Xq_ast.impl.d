lib/xquery/xq_ast.ml: List Weblab_xpath
