lib/xquery/xq_print.ml: Buffer List Printf String Weblab_xpath Xq_ast
