lib/xquery/xq_optimize.ml: List String Weblab_xpath Xq_ast
