lib/xquery/xq_compile.ml: Ast List Option Printf Weblab_xpath Xq_ast
