lib/xquery/xq_eval.mli: Table Tree Weblab_relalg Weblab_xml Xq_ast
