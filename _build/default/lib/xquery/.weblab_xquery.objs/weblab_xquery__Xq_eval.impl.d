lib/xquery/xq_eval.ml: Array List Option Printf String Table Tree Value Weblab_relalg Weblab_xml Weblab_xpath Xq_ast
