lib/xquery/xq_parser.ml: Ast Lexer List Parser Printf String Weblab_xpath Xq_ast
