(* The query optimization of Example 9: when the where clause contains
   [$x1 = $x2] with [$x1 := $v1/@id] and [$x2 := $v2/@id], @id is a node
   identifier (of type ID), and $v1/$v2 range over the same path, the two
   for-variables denote the same node — so $v2 can be merged into $v1,
   turning a join into a navigation.  Dead lets are then eliminated. *)

let path_equal (a : Xq_ast.path) (b : Xq_ast.path) =
  a.Xq_ast.start = b.Xq_ast.start && a.Xq_ast.steps = b.Xq_ast.steps

let subst_path ~from_var ~to_var (p : Xq_ast.path) =
  match p.Xq_ast.start with
  | `Var v when String.equal v from_var -> { p with Xq_ast.start = `Var to_var }
  | `Var _ | `Root -> p

let rec subst_expr ~from_var ~to_var (e : Xq_ast.expr) =
  match e with
  | Xq_ast.Attr_of (v, a) when String.equal v from_var -> Xq_ast.Attr_of (to_var, a)
  | Xq_ast.Attr_of _ | Xq_ast.String_lit _ | Xq_ast.Int_lit _ | Xq_ast.Var_ref _ -> e
  | Xq_ast.Skolem_call (f, args) ->
    Xq_ast.Skolem_call (f, List.map (subst_expr ~from_var ~to_var) args)

let rec subst_cond ~from_var ~to_var (c : Xq_ast.cond) =
  let se = subst_expr ~from_var ~to_var in
  let sp = subst_path ~from_var ~to_var in
  match c with
  | Xq_ast.Cmp (a, op, b) -> Xq_ast.Cmp (se a, op, se b)
  | Xq_ast.Exists p -> Xq_ast.Exists (sp p)
  | Xq_ast.Has_attr (v, a) when String.equal v from_var -> Xq_ast.Has_attr (to_var, a)
  | Xq_ast.Has_attr _ -> c
  | Xq_ast.Path_cmp (p, op, e) -> Xq_ast.Path_cmp (sp p, op, se e)
  | Xq_ast.And (a, b) -> Xq_ast.And (subst_cond ~from_var ~to_var a, subst_cond ~from_var ~to_var b)
  | Xq_ast.Or (a, b) -> Xq_ast.Or (subst_cond ~from_var ~to_var a, subst_cond ~from_var ~to_var b)
  | Xq_ast.Not a -> Xq_ast.Not (subst_cond ~from_var ~to_var a)

let subst_query ~from_var ~to_var (q : Xq_ast.flwor) =
  {
    Xq_ast.clauses =
      List.map
        (function
          | Xq_ast.For (v, p) -> Xq_ast.For (v, subst_path ~from_var ~to_var p)
          | Xq_ast.Let (v, e) -> Xq_ast.Let (v, subst_expr ~from_var ~to_var e)
          | Xq_ast.Filter c -> Xq_ast.Filter (subst_cond ~from_var ~to_var c))
        q.Xq_ast.clauses;
    where = List.map (subst_cond ~from_var ~to_var) q.Xq_ast.where;
    return_cols =
      List.map (fun (c, e) -> (c, subst_expr ~from_var ~to_var e)) q.Xq_ast.return_cols;
  }

(* One merge step: find an equality join on a key attribute between two
   for-variables ranging over syntactically equal paths. *)
let find_key_join ~key_attrs (q : Xq_ast.flwor) =
  let lets = Xq_ast.let_defs q in
  let fors =
    List.filter_map
      (function
        | Xq_ast.For (v, p) -> Some (v, p)
        | Xq_ast.Let _ | Xq_ast.Filter _ -> None)
      q.Xq_ast.clauses
  in
  let key_source x =
    (* x is a let bound to $v/@key *)
    match List.assoc_opt x lets with
    | Some (Xq_ast.Attr_of (v, a)) when List.mem a key_attrs -> Some (v, a)
    | _ -> None
  in
  List.find_map
    (fun cond ->
      match cond with
      | Xq_ast.Cmp (Xq_ast.Var_ref x1, Weblab_xpath.Ast.Eq, Xq_ast.Var_ref x2) -> (
        match key_source x1, key_source x2 with
        | Some (v1, a1), Some (v2, a2)
          when String.equal a1 a2 && not (String.equal v1 v2) -> (
          match List.assoc_opt v1 fors, List.assoc_opt v2 fors with
          | Some p1, Some p2 when path_equal p1 p2 -> Some (cond, v1, v2)
          | _ -> None)
        | _ -> None)
      | _ -> None)
    q.Xq_ast.where

let rec used_vars_expr (e : Xq_ast.expr) =
  match e with
  | Xq_ast.Var_ref v -> [ v ]
  | Xq_ast.Skolem_call (_, args) -> List.concat_map used_vars_expr args
  | Xq_ast.Attr_of _ | Xq_ast.String_lit _ | Xq_ast.Int_lit _ -> []

let rec used_vars_cond (c : Xq_ast.cond) =
  match c with
  | Xq_ast.Cmp (a, _, b) -> used_vars_expr a @ used_vars_expr b
  | Xq_ast.Path_cmp (_, _, e) -> used_vars_expr e
  | Xq_ast.Exists _ | Xq_ast.Has_attr _ -> []
  | Xq_ast.And (a, b) | Xq_ast.Or (a, b) -> used_vars_cond a @ used_vars_cond b
  | Xq_ast.Not a -> used_vars_cond a

(* Remove let-clauses whose variable is referenced nowhere. *)
let eliminate_dead_lets (q : Xq_ast.flwor) =
  let used =
    List.concat_map used_vars_cond q.Xq_ast.where
    @ List.concat_map (fun (_, e) -> used_vars_expr e) q.Xq_ast.return_cols
    @ List.concat_map
        (function
          | Xq_ast.Let (_, e) -> used_vars_expr e
          | Xq_ast.Filter c -> used_vars_cond c
          | Xq_ast.For _ -> [])
        q.Xq_ast.clauses
  in
  {
    q with
    Xq_ast.clauses =
      List.filter
        (function
          | Xq_ast.Let (v, _) -> List.mem v used
          | Xq_ast.For _ | Xq_ast.Filter _ -> true)
        q.Xq_ast.clauses;
  }

let rec merge_key_joins ?(key_attrs = [ "id" ]) (q : Xq_ast.flwor) =
  match find_key_join ~key_attrs q with
  | None -> eliminate_dead_lets q
  | Some (cond, keep, drop) ->
    let q =
      { q with
        Xq_ast.where = List.filter (fun c -> c != cond) q.Xq_ast.where;
        clauses =
          List.filter
            (function
              | Xq_ast.For (v, _) -> not (String.equal v drop)
              | Xq_ast.Let _ | Xq_ast.Filter _ -> true)
            q.Xq_ast.clauses }
    in
    merge_key_joins ~key_attrs (subst_query ~from_var:drop ~to_var:keep q)


(* ---- selection pushdown ----

   Move each where-conjunct to the earliest point in the clause list at
   which all the variables it mentions are bound, so embeddings are pruned
   before later for-clauses multiply them.  Semantics-preserving
   (conditions are only ever evaluated with the same bindings). *)

(* Variables a path/expr/cond mentions — for-variables and let-variables
   alike: both appear as clauses, so a filter placed after the clauses
   binding every mentioned name is always evaluable. *)
let rec path_deps (p : Xq_ast.path) =
  match p.Xq_ast.start with `Root -> [] | `Var v -> [ v ]

and expr_deps (e : Xq_ast.expr) =
  match e with
  | Xq_ast.Attr_of (v, _) -> [ v ]
  | Xq_ast.Var_ref v -> [ v ]
  | Xq_ast.Skolem_call (_, args) -> List.concat_map expr_deps args
  | Xq_ast.String_lit _ | Xq_ast.Int_lit _ -> []

and cond_deps (c : Xq_ast.cond) =
  match c with
  | Xq_ast.Cmp (a, _, b) -> expr_deps a @ expr_deps b
  | Xq_ast.Exists p -> path_deps p
  | Xq_ast.Has_attr (v, _) -> [ v ]
  | Xq_ast.Path_cmp (p, _, e) -> path_deps p @ expr_deps e
  | Xq_ast.And (a, b) | Xq_ast.Or (a, b) -> cond_deps a @ cond_deps b
  | Xq_ast.Not a -> cond_deps a

let push_filters (q : Xq_ast.flwor) : Xq_ast.flwor =
  let insert cond clauses =
    let deps = List.sort_uniq String.compare (cond_deps cond) in
    (* find the shortest prefix binding every dep (for-vars and let-vars
       count where they appear) *)
    let rec place bound acc = function
      | rest when List.for_all (fun d -> List.mem d bound) deps ->
        List.rev_append acc (Xq_ast.Filter cond :: rest)
      | [] -> List.rev_append acc [ Xq_ast.Filter cond ]
      | clause :: rest ->
        let bound =
          match clause with
          | Xq_ast.For (v, _) | Xq_ast.Let (v, _) -> v :: bound
          | Xq_ast.Filter _ -> bound
        in
        place bound (clause :: acc) rest
    in
    place [] [] clauses
  in
  let clauses =
    List.fold_left (fun cls cond -> insert cond cls) q.Xq_ast.clauses q.Xq_ast.where
  in
  { q with Xq_ast.clauses; where = [] }

(* The full optimization pipeline: merge key joins, then push the
   remaining selections down. *)
let optimize ?key_attrs q = push_filters (merge_key_joins ?key_attrs q)
