(* Abstract syntax of the XQuery fragment the Mapper generates (§6).

   Mapping rules compile to FLWOR expressions of the shape shown in
   Examples 8 and 9: a block of [for] clauses binding one variable per
   pattern step, [let] clauses for the variable assignments, one [where]
   conjunction, and a constructor returning the provenance links (or the
   embeddings). *)

type axis = Weblab_xpath.Ast.axis

type nametest = Weblab_xpath.Ast.nametest

type path = {
  start : [ `Root | `Var of string ];
  steps : (axis * nametest) list;
}

type expr =
  | Attr_of of string * string       (* $v/@a  *)
  | String_lit of string
  | Int_lit of int
  | Var_ref of string                (* a let-bound value *)
  | Skolem_call of string * expr list

type cond =
  | Cmp of expr * Weblab_xpath.Ast.cmpop * expr
  | Exists of path                   (* some node matches *)
  | Has_attr of string * string      (* $v/@a exists *)
  | Path_cmp of path * Weblab_xpath.Ast.cmpop * expr
      (* existential comparison over the string-values of a node set,
         e.g.  $v/Annotation/Language = 'fr' *)
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type clause =
  | For of string * path
  | Let of string * expr
  | Filter of cond
      (* an inlined where-conjunct, evaluated as soon as its variables are
         bound (produced by the selection-pushdown optimizer) *)

type flwor = {
  clauses : clause list;
  where : cond list;                 (* conjunction *)
  (* The element constructor: one column per child element, as in
     <emb><r>{$v2/@id}</r><x>{$x}</x></emb>. *)
  return_cols : (string * expr) list;
}

let for_vars q =
  List.filter_map
    (function For (v, _) -> Some v | Let _ | Filter _ -> None)
    q.clauses

let let_defs q =
  List.filter_map
    (function Let (v, e) -> Some (v, e) | For _ | Filter _ -> None)
    q.clauses
