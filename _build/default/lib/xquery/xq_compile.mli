(** Compilation of mapping rules into FLWOR expressions (§6).

    Each pattern step becomes a [for] variable, each variable assignment a
    [let], each predicate a [where] conjunct; the provenance query of a
    rule joins the source and target blocks on the shared variables and
    adds the temporal/service constraints of the §4 rewriting —
    reproducing the Mapper's generated XQuery of Examples 8 and 9. *)

open Weblab_xpath

exception Unsupported of string
(** Raised for pattern features outside the compiled fragment:
    positional predicates, [position()] and path operands in bindings. *)

(** Compiled form of one pattern. *)
type block = {
  clauses : Xq_ast.clause list;
  where : Xq_ast.cond list;
  last_var : string;                   (** for-variable of the final step *)
  renaming : (string * string) list;   (** pattern var → let var *)
}

val compile_pattern :
  prefix:string -> rename_var:(string -> string) -> Ast.pattern -> block
(** For-variables are [prefix]1, 2, …; binding variables are renamed
    through [rename_var] (the rule compiler keeps source and target
    namespaces apart with it). *)

val compile_pattern_query : ?require_uri:bool -> Ast.pattern -> Xq_ast.flwor
(** Example 8: a single pattern compiled to the query returning its
    embeddings, one [<emb>] column per binding variable plus [r].
    [require_uri] (default [false], matching the printed example) adds
    the implicit Definition 4 condition that the result node carries
    [@id]. *)

val compile_rule_query :
  Ast.pattern -> Ast.pattern -> service:string -> time:int -> Xq_ast.flwor
(** Example 9: the provenance query of a rule for the call
    [(service, time)], to be evaluated against the {e final} document;
    returns [in]/[out] columns. *)
