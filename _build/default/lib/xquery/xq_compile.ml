(* Compilation of mapping rules into FLWOR expressions (§6).

   Each pattern step becomes a [for] variable, each variable assignment a
   [let], each predicate a [where] conjunct; the provenance query of a rule
   joins the source and target blocks on the shared variables and adds the
   temporal/service constraints of the §4 rewriting — reproducing the
   Mapper's generated XQuery of Examples 8 and 9. *)

open Weblab_xpath

exception Unsupported of string

(* Compiled form of one pattern: its clauses, where-conjuncts, the final
   step's for-variable, and the renaming applied to its binding
   variables. *)
type block = {
  clauses : Xq_ast.clause list;
  where : Xq_ast.cond list;
  last_var : string;
  renaming : (string * string) list;  (* pattern var -> let var *)
}

let rel_path_from var (rp : Ast.rel_path) : Xq_ast.path =
  { Xq_ast.start = `Var var;
    steps = List.map (fun { Ast.raxis; rtest } -> (raxis, rtest)) rp }

let rec compile_operand ~var ~rename_var (op : Ast.operand) : Xq_ast.expr =
  match op with
  | Ast.Attr a -> Xq_ast.Attr_of (var, a)
  | Ast.Lit s -> Xq_ast.String_lit s
  | Ast.Num n -> Xq_ast.Int_lit n
  | Ast.Var x -> Xq_ast.Var_ref (rename_var x)
  | Ast.Skolem (f, args) ->
    Xq_ast.Skolem_call (f, List.map (compile_operand ~var ~rename_var) args)
  | Ast.Position | Ast.Last ->
    raise (Unsupported "position()/last() cannot be compiled to FLWOR")
  | Ast.Count _ | Ast.Strlen _ ->
    raise (Unsupported "count()/string-length() cannot be compiled to FLWOR")
  | Ast.Path _ | Ast.Path_attr _ ->
    raise (Unsupported "a path operand is only supported as a comparison side")

let rec compile_cond ~var ~rename_var (p : Ast.pred) : Xq_ast.cond =
  match p with
  | Ast.Bind _ -> raise (Unsupported "nested variable binding")
  | Ast.Cmp (Ast.Path rp, op, b) ->
    Xq_ast.Path_cmp (rel_path_from var rp, op, compile_operand ~var ~rename_var b)
  | Ast.Cmp (a, op, Ast.Path rp) ->
    (* Flip the comparison so the path is on the left. *)
    let flip : Ast.cmpop -> Ast.cmpop = function
      | Ast.Eq -> Ast.Eq
      | Ast.Neq -> Ast.Neq
      | Ast.Lt -> Ast.Gt
      | Ast.Le -> Ast.Ge
      | Ast.Gt -> Ast.Lt
      | Ast.Ge -> Ast.Le
    in
    Xq_ast.Path_cmp (rel_path_from var rp, flip op, compile_operand ~var ~rename_var a)
  | Ast.Cmp (a, op, b) ->
    Xq_ast.Cmp (compile_operand ~var ~rename_var a, op, compile_operand ~var ~rename_var b)
  | Ast.Exists_path rp -> Xq_ast.Exists (rel_path_from var rp)
  | Ast.Exists_attr a -> Xq_ast.Has_attr (var, a)
  | Ast.Index _ -> raise (Unsupported "positional predicates cannot be compiled")
  | Ast.Fn_bool (f, _) ->
    raise (Unsupported (Printf.sprintf "%s() cannot be compiled to FLWOR" f))
  | Ast.And (a, b) -> Xq_ast.And (compile_cond ~var ~rename_var a, compile_cond ~var ~rename_var b)
  | Ast.Or (a, b) -> Xq_ast.Or (compile_cond ~var ~rename_var a, compile_cond ~var ~rename_var b)
  | Ast.Not a -> Xq_ast.Not (compile_cond ~var ~rename_var a)

(* Compile one pattern into a block.  For-variables are [prefix]1, 2, …;
   binding variables $x are renamed through [rename_var] (the rule
   compiler uses it to keep source and target namespaces apart). *)
let compile_pattern ~prefix ~rename_var (pattern : Ast.pattern) : block =
  let clauses = ref [] in
  let where = ref [] in
  let renaming = ref [] in
  let push c = clauses := c :: !clauses in
  let last_var =
    List.fold_left
      (fun (i, prev) (step : Ast.step) ->
        let var = Printf.sprintf "%s%d" prefix (i + 1) in
        let start = match prev with None -> `Root | Some v -> `Var v in
        push (Xq_ast.For (var, { Xq_ast.start; steps = [ (step.Ast.axis, step.Ast.test) ] }));
        List.iter
          (fun pred ->
            match pred with
            | Ast.Bind (x, src) ->
              let x' = rename_var x in
              renaming := (x, x') :: !renaming;
              push (Xq_ast.Let (x', compile_operand ~var ~rename_var src))
            | _ -> where := compile_cond ~var ~rename_var pred :: !where)
          step.Ast.preds;
        (i + 1, Some var))
      (0, None) pattern
    |> snd
    |> Option.get
  in
  { clauses = List.rev !clauses;
    where = List.rev !where;
    last_var;
    renaming = List.rev !renaming }

(* Example 8: a single pattern compiled to the query returning its
   embeddings. *)
let compile_pattern_query ?(require_uri = false) (pattern : Ast.pattern) : Xq_ast.flwor =
  let block = compile_pattern ~prefix:"v" ~rename_var:(fun x -> x) pattern in
  let where =
    if require_uri then block.where @ [ Xq_ast.Has_attr (block.last_var, "id") ]
    else block.where
  in
  {
    Xq_ast.clauses = block.clauses;
    where;
    return_cols =
      ("r", Xq_ast.Attr_of (block.last_var, "id"))
      :: List.map (fun (x, x') -> (x, Xq_ast.Var_ref x')) block.renaming;
  }

(* Example 9: the provenance query of a rule for a service call (s, t),
   evaluated against the final document.  Shared variables join the two
   blocks; the temporal constraints select the correct document states. *)
let compile_rule_query (source : Ast.pattern) (target : Ast.pattern)
    ~(service : string) ~(time : int) : Xq_ast.flwor =
  let src = compile_pattern ~prefix:"s" ~rename_var:(fun x -> x ^ "1") source in
  (* Free variables of the target refer to source bindings; bound target
     variables get their own namespace. *)
  let tgt_rename x =
    if List.mem x (Ast.variables target) then x ^ "2" else x ^ "1"
  in
  let tgt = compile_pattern ~prefix:"t" ~rename_var:tgt_rename target in
  let join_conds =
    List.filter_map
      (fun (x, x1) ->
        match List.assoc_opt x tgt.renaming with
        | Some x2 -> Some (Xq_ast.Cmp (Xq_ast.Var_ref x1, Ast.Eq, Xq_ast.Var_ref x2))
        | None -> None)
      src.renaming
  in
  let temporal =
    [ Xq_ast.Cmp (Xq_ast.Attr_of (src.last_var, "t"), Ast.Lt, Xq_ast.Int_lit time);
      Xq_ast.Cmp (Xq_ast.Attr_of (tgt.last_var, "t"), Ast.Eq, Xq_ast.Int_lit time);
      Xq_ast.Cmp (Xq_ast.Attr_of (tgt.last_var, "s"), Ast.Eq, Xq_ast.String_lit service)
    ]
  in
  {
    Xq_ast.clauses = src.clauses @ tgt.clauses;
    where = src.where @ tgt.where @ join_conds @ temporal;
    return_cols =
      [ ("in", Xq_ast.Attr_of (src.last_var, "id"));
        ("out", Xq_ast.Attr_of (tgt.last_var, "id")) ];
  }
