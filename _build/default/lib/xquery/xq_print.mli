(** Concrete XQuery syntax for compiled queries, in the layout of
    Examples 8 and 9: a [for] block, a [let] block, a [where] conjunction
    and a [return] constructor ([<prov>{in} -> {out}</prov>] for rule
    queries, [<emb>…</emb>] for embedding queries). *)

val to_string : Xq_ast.flwor -> string

val path_to_string : Xq_ast.path -> string

val expr_to_string : Xq_ast.expr -> string

val cond_to_string : Xq_ast.cond -> string
