(* Concrete XQuery syntax for compiled queries, in the layout of
   Examples 8 and 9. *)

let nametest_to_string = Weblab_xpath.Print.nametest_to_string

let path_to_string (p : Xq_ast.path) =
  let start = match p.Xq_ast.start with `Root -> "" | `Var v -> "$" ^ v in
  start
  ^ String.concat ""
      (List.map
         (fun (axis, test) ->
           let sep = Weblab_xpath.Print.axis_to_string axis in
           sep ^ nametest_to_string test)
         p.Xq_ast.steps)

let rec expr_to_string (e : Xq_ast.expr) =
  match e with
  | Xq_ast.Attr_of (v, a) -> Printf.sprintf "$%s/@%s" v a
  | Xq_ast.String_lit s -> Printf.sprintf "'%s'" s
  | Xq_ast.Int_lit i -> string_of_int i
  | Xq_ast.Var_ref v -> "$" ^ v
  | Xq_ast.Skolem_call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))

let cmpop_to_string = Weblab_xpath.Print.cmpop_to_string

let rec cond_to_string (c : Xq_ast.cond) =
  match c with
  | Xq_ast.Cmp (a, op, b) ->
    Printf.sprintf "%s %s %s" (expr_to_string a) (cmpop_to_string op)
      (expr_to_string b)
  | Xq_ast.Exists p -> path_to_string p
  | Xq_ast.Has_attr (v, a) -> Printf.sprintf "$%s/@%s" v a
  | Xq_ast.Path_cmp (p, op, e) ->
    Printf.sprintf "%s %s %s" (path_to_string p) (cmpop_to_string op)
      (expr_to_string e)
  | Xq_ast.And (a, b) -> Printf.sprintf "%s and %s" (cond_to_string a) (cond_to_string b)
  | Xq_ast.Or (a, b) -> Printf.sprintf "(%s or %s)" (cond_to_string a) (cond_to_string b)
  | Xq_ast.Not a -> Printf.sprintf "not(%s)" (cond_to_string a)

let to_string (q : Xq_ast.flwor) =
  let buf = Buffer.create 256 in
  let fors =
    List.filter_map
      (function
        | Xq_ast.For (v, p) -> Some (Printf.sprintf "$%s in %s" v (path_to_string p))
        | Xq_ast.Let _ | Xq_ast.Filter _ -> None)
      q.Xq_ast.clauses
  in
  let lets =
    List.filter_map
      (function
        | Xq_ast.Let (v, e) -> Some (Printf.sprintf "$%s := %s" v (expr_to_string e))
        | Xq_ast.For _ | Xq_ast.Filter _ -> None)
      q.Xq_ast.clauses
  in
  (* inlined filters print back in the where clause (position is an
     execution detail, not part of the semantics) *)
  let q =
    { q with
      Xq_ast.where =
        List.filter_map
          (function Xq_ast.Filter c -> Some c | Xq_ast.For _ | Xq_ast.Let _ -> None)
          q.Xq_ast.clauses
        @ q.Xq_ast.where }
  in
  Buffer.add_string buf ("for " ^ String.concat ",\n    " fors ^ "\n");
  if lets <> [] then
    Buffer.add_string buf ("let " ^ String.concat ",\n    " lets ^ "\n");
  if q.Xq_ast.where <> [] then
    Buffer.add_string buf
      ("where "
      ^ String.concat "\n  and " (List.map cond_to_string q.Xq_ast.where)
      ^ "\n");
  (match q.Xq_ast.return_cols with
   | [ ("in", e_in); ("out", e_out) ] ->
     Buffer.add_string buf
       (Printf.sprintf "return <prov>{%s} -> {%s}</prov>" (expr_to_string e_in)
          (expr_to_string e_out))
   | cols ->
     Buffer.add_string buf "return <emb>";
     List.iter
       (fun (c, e) ->
         Buffer.add_string buf (Printf.sprintf "<%s>{%s}</%s>" c (expr_to_string e) c))
       cols;
     Buffer.add_string buf "</emb>");
  Buffer.contents buf
