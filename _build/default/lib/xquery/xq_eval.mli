(** Evaluation of the FLWOR fragment over a WebLab document: [for]
    clauses iterate over path node-sequences, [let] clauses bind computed
    values (a missing attribute kills the embedding, per Definition 4
    condition 2), the [where] conjunction filters, and each surviving
    binding yields one row of the result table. *)

open Weblab_xml
open Weblab_relalg

exception Unbound_variable of string
(** A for/let variable was referenced before being bound — a compiler
    bug, not a data condition. *)

val run : Tree.t -> Xq_ast.flwor -> Table.t
(** Result columns are the query's return columns; rows are distinct. *)
