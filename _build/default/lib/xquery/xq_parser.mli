(** Parser for the FLWOR fragment the Mapper emits — the inverse of
    {!Xq_print}: the queries the paper prints (Examples 8 and 9) can be
    read back and executed with {!Xq_eval}.

    [parse (Xq_print.to_string q)] is semantically equivalent to [q]
    (same {!Xq_eval} results — tested); structurally, parsed queries
    group all [for] clauses before all [let] clauses, as the printed
    layout does. *)

exception Error of { pos : int; message : string }

val parse : string -> Xq_ast.flwor
(** @raise Error with a byte offset on malformed input. *)

val parse_opt : string -> (Xq_ast.flwor, string) result
