(** The paper's running example, reproduced with its exact resource
    numbering (Figures 1, 2 and 4):

    {v
    d0:  Resource r1 ─ MediaUnit (node 2) ─ NativeContent (node 3)
    c1 = (Normaliser, t1):        promotes node 3 to r3, adds
                                  TextMediaUnit r4 / TextContent r5
    c2 = (LanguageExtractor, t2): adds Annotation r6 / Language "fr"
    c3 = (Translator, t3):        adds TextMediaUnit r8 (nodes 9-11
                                  unlabeled)
    v}

    The services reuse the real implementations' text processing but pin
    the URIs of the figures, so the expected tables can be checked
    verbatim (see [test/test_paper.ml]). *)

open Weblab_xml
open Weblab_workflow

val french_text : string
(** The initial NativeContent (real French, so the real language
    detector fires the M3 rule). *)

val initial_document : unit -> Tree.t
(** The d0 of Figure 4. *)

val services : Service.t list
(** Normaliser, LanguageExtractor, Translator (Figure 1a). *)

val mapping_syntax : string list
(** The Figure 3 mappings M1, M2, M3 in concrete syntax. *)

val m1 : string
val m2 : string
val m3 : string

val rulebook : unit -> Weblab_prov.Strategy.rulebook
(** The parsed M(s) assignments. *)

val phi : int -> Weblab_xpath.Ast.pattern
(** The patterns φ1 … φ4 of Example 3.
    @raise Invalid_argument outside 1-4. *)

type t = {
  doc : Tree.t;
  trace : Trace.t;
  rulebook : Weblab_prov.Strategy.rulebook;
}

val run : unit -> t
(** Execute the whole scenario. *)

val state : t -> int -> Doc_state.t
(** The document state dᵢ. *)

val abbreviations : (string * string) list
(** Element-name abbreviations of Figure 4 (Resource → R, …). *)
