(** Renderers regenerating every figure and worked example of the paper
    from a live execution of the scenario.  [bin/main.exe figures] prints
    them; the paper test-suite checks the embedded expectations. *)

open Weblab_relalg
open Weblab_prov

val fig1 : Paper.t -> string
(** Figure 1: control flow and per-call data flow. *)

val fig2 : Paper.t -> string
(** Figure 2: the Source and Provenance tables, plus inherited links. *)

val fig3 : Paper.t -> string
(** Figure 3: the mappings. *)

val fig4 : Paper.t -> string
(** Figure 4: the four document states as trees, with the paper's
    1-11 element numbering and URI-promotion timing. *)

val render_state : Paper.t -> int -> string
(** One state of Figure 4. *)

val ex5 : Paper.t -> string
(** Example 5: the four embedding tables. *)

val ex6 : Paper.t -> string
(** Example 6: the two rule-application join tables. *)

val ex7 : Paper.t -> string
(** Example 7: the restriction to out(c3). *)

val ex8 : Paper.t -> string
(** Example 8: the generated XQuery for φ1. *)

val ex9 : Paper.t -> string
(** Example 9: the generated and optimized provenance queries. *)

val all : Paper.t -> (string * string) list
(** All artifacts, in paper order, as (title, body). *)

(** {1 Pieces used by the test-suite} *)

val explicit_graph : ?strategy:Strategy.post_hoc -> Paper.t -> Prov_graph.t

val inherited_graph : ?strategy:Strategy.post_hoc -> Paper.t -> Prov_graph.t

val pattern_result : Paper.t -> phi:int -> state:int -> Table.t
(** R{_φ}(dᵢ), columns renamed to [$r]/[$x]. *)

val ex6_table : Paper.t -> rule:int -> from_state:int -> to_state:int -> Table.t

val ex7_links : Paper.t -> (string * string) list

val ex9_queries : unit -> Weblab_xquery.Xq_ast.flwor * Weblab_xquery.Xq_ast.flwor
(** The (generated, optimized) pair. *)
