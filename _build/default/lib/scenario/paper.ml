(* The paper's running example, reproduced with its exact resource
   numbering (Figures 1, 2 and 4):

   d0:  Resource r1 ─ MediaUnit (node 2) ─ NativeContent (node 3)
   c1 = (Normaliser, t1):        promotes node 3 to r3, adds
                                 TextMediaUnit r4 / TextContent r5
   c2 = (LanguageExtractor, t2): adds Annotation r6 / Language "fr" under r4
   c3 = (Translator, t3):        adds TextMediaUnit r8 with TextContent and
                                 Annotation/Language "en" (nodes 9-11,
                                 unlabeled)

   The services re-use the real implementations' text processing but pin
   the URIs of the figures, so the expected tables can be checked
   verbatim. *)

open Weblab_xml
open Weblab_workflow
open Weblab_services

let french_text =
  "Le gouvernement est dans une crise politique avec les entreprises pour \
   la sécurité des données."

let initial_document () =
  let doc = Tree.create () in
  let root = Tree.new_element doc ~parent:Tree.no_node Schema.resource in
  Tree.set_uri doc root "r1";
  let mu = Tree.new_element doc ~parent:root Schema.media_unit in
  let nc = Tree.new_element doc ~parent:mu Schema.native_content in
  ignore (Tree.new_text doc ~parent:nc french_text);
  doc

let find_one doc name =
  match Schema.elements doc name with
  | [ n ] -> n
  | n :: _ -> n
  | [] -> invalid_arg (name ^ " not found")

let normaliser =
  Service.inproc ~name:"Normaliser"
    ~description:"paper scenario: normalize node 3 into r4/r5" (fun doc ->
      let nc = find_one doc Schema.native_content in
      Tree.set_uri doc nc "r3";
      let unit =
        Tree.new_element doc ~parent:(Tree.root doc) Schema.text_media_unit
      in
      Tree.set_uri doc unit "r4";
      let content = Tree.new_element doc ~parent:unit Schema.text_content in
      Tree.set_uri doc content "r5";
      ignore
        (Tree.new_text doc ~parent:content
           (Normaliser.normalize (Tree.string_value doc nc))))

let language_extractor =
  Service.inproc ~name:"LanguageExtractor"
    ~description:"paper scenario: annotate r4 with its language" (fun doc ->
      let unit = find_one doc Schema.text_media_unit in
      let text =
        match Schema.text_of_unit doc unit with
        | Some (_, t) -> t
        | None -> ""
      in
      let code = Langdata.code (Language_extractor.detect text) in
      let ann = Tree.new_element doc ~parent:unit Schema.annotation in
      Tree.set_uri doc ann "r6";
      let l = Tree.new_element doc ~parent:ann Schema.language in
      ignore (Tree.new_text doc ~parent:l code))

let translator =
  Service.inproc ~name:"Translator"
    ~description:"paper scenario: translate r4 into English as r8" (fun doc ->
      let unit = find_one doc Schema.text_media_unit in
      let text =
        match Schema.text_of_unit doc unit with
        | Some (_, t) -> t
        | None -> ""
      in
      let out =
        Tree.new_element doc ~parent:(Tree.root doc) Schema.text_media_unit
      in
      Tree.set_uri doc out "r8";
      let content = Tree.new_element doc ~parent:out Schema.text_content in
      ignore
        (Tree.new_text doc ~parent:content
           (Translator.translate ~source_lang:Langdata.Fr text));
      let ann = Tree.new_element doc ~parent:out Schema.annotation in
      let l = Tree.new_element doc ~parent:ann Schema.language in
      ignore (Tree.new_text doc ~parent:l "en"))

let services = [ normaliser; language_extractor; translator ]

(* Figure 3: the provenance mappings, in concrete syntax. *)
let m1 = "M1: /Resource//NativeContent ==> //TextMediaUnit[1]"

let m2 =
  "M2: //TextMediaUnit[$x := @id]/TextContent ==> \
   //TextMediaUnit[$x := @id]/Annotation[Language]"

let m3 =
  "M3: //TextMediaUnit[Annotation/Language = 'fr'] ==> \
   //TextMediaUnit[Annotation/Language = 'en']"

let mapping_syntax = [ m1; m2; m3 ]

let rulebook () : Weblab_prov.Strategy.rulebook =
  [ ("Normaliser", [ Weblab_prov.Rule_parser.parse m1 ]);
    ("LanguageExtractor", [ Weblab_prov.Rule_parser.parse m2 ]);
    ("Translator", [ Weblab_prov.Rule_parser.parse m3 ]) ]

(* Example 3: the patterns φ1 … φ4 (over the full element names). *)
let phi = function
  | 1 -> Weblab_xpath.Parser.pattern "//TextMediaUnit[$x := @id]/TextContent"
  | 2 ->
    Weblab_xpath.Parser.pattern
      "//TextMediaUnit[@id][$x := @id]/TextContent[$r := @id]"
  | 3 -> Weblab_xpath.Parser.pattern "//TextMediaUnit[$x := @id]/Annotation[Language]"
  | 4 -> Weblab_xpath.Parser.pattern "/Resource[$x := @id]//TextMediaUnit[Annotation/Language]"
  | n -> invalid_arg (Printf.sprintf "phi %d" n)

type t = {
  doc : Tree.t;
  trace : Trace.t;
  rulebook : Weblab_prov.Strategy.rulebook;
}

let run () =
  let doc = initial_document () in
  let trace = Orchestrator.execute doc services in
  { doc; trace; rulebook = rulebook () }

let state e i = Doc_state.at e.doc i

(* Element-name abbreviations of Figure 4. *)
let abbreviations =
  [ (Schema.resource, "R"); (Schema.media_unit, "M");
    (Schema.native_content, "N"); (Schema.text_media_unit, "T");
    (Schema.text_content, "C"); (Schema.annotation, "A");
    (Schema.language, "L") ]
