(* Renderers regenerating every figure and worked example of the paper
   from a live execution of the scenario.  Each function returns the
   artifact as a string; `bin/main.exe figures` prints them and the paper
   test-suite checks the embedded expectations. *)

open Weblab_xml
open Weblab_relalg
open Weblab_workflow
open Weblab_prov

let abbrev name =
  match List.assoc_opt name Paper.abbreviations with
  | Some a -> a
  | None -> name

(* The paper numbers element nodes 1..11 in document order; text nodes are
   not numbered.  A node displays its URI once it has one — but only from
   the state in which it acquired it (node 3 is "3" in d0 and "r3" from
   d1 on). *)
let element_ordinals doc =
  let tbl = Hashtbl.create 32 in
  let next = ref 0 in
  if Tree.has_root doc then
    Tree.iter_subtree doc (Tree.root doc) (fun n ->
        if Tree.is_element doc n then begin
          incr next;
          Hashtbl.replace tbl n !next
        end);
  tbl

let node_label ?(at = max_int) ~ordinals doc n =
  match Tree.uri doc n with
  | Some u when Tree.uri_time doc n <= at -> u
  | Some _ | None -> (
    match Hashtbl.find_opt ordinals n with
    | Some i -> string_of_int i
    | None -> Printf.sprintf "#%d" n)

(* --- Figure 1: the workflow and the document evolution --- *)

let fig1 (e : Paper.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Figure 1(a) — control flow:\n  ";
  Buffer.add_string buf
    (String.concat " --> "
       ("d0" :: List.map Service.name Paper.services));
  Buffer.add_string buf "\n\nFigure 1(b) — data flow (new resources per call):\n";
  List.iter
    (fun (c : Trace.call) ->
      if c.Trace.time > 0 then
        Buffer.add_string buf
          (Printf.sprintf "  t%d %-18s adds: %s\n" c.Trace.time c.Trace.service
             (String.concat ", " (Trace.resources_of_call e.Paper.trace c))))
    (Trace.calls e.Paper.trace);
  Buffer.contents buf

(* --- Figure 4: the document states as trees --- *)

let render_state (e : Paper.t) i =
  let doc = e.Paper.doc in
  let state = Paper.state e i in
  let ordinals = element_ordinals doc in
  let buf = Buffer.create 256 in
  let rec go depth n =
    if Doc_state.visible state n then begin
      if Tree.is_element doc n then begin
        Buffer.add_string buf (String.make (2 * depth) ' ');
        Buffer.add_string buf
          (Printf.sprintf "%s %s\n" (abbrev (Tree.name doc n))
             (node_label ~at:i ~ordinals doc n));
        List.iter (go (depth + 1)) (Tree.children doc n)
      end
    end
  in
  Buffer.add_string buf (Printf.sprintf "d%d:\n" i);
  go 1 (Tree.root doc);
  Buffer.contents buf

let fig4 e =
  String.concat "\n" (List.map (render_state e) [ 0; 1; 2; 3 ])

(* --- Figure 2: Source and Provenance tables --- *)

let explicit_graph ?(strategy = `Rewrite) (e : Paper.t) =
  Engine.provenance ~strategy
    { Engine.doc = e.Paper.doc; trace = e.Paper.trace }
    e.Paper.rulebook

let inherited_graph ?(strategy = `Rewrite) (e : Paper.t) =
  Engine.provenance ~strategy ~inheritance:true
    { Engine.doc = e.Paper.doc; trace = e.Paper.trace }
    e.Paper.rulebook

let fig2 e =
  let g = explicit_graph e in
  let gi = inherited_graph e in
  let inherited_links =
    Prov_graph.links gi
    |> List.filter (fun l -> l.Prov_graph.inherited)
    |> List.map (fun l -> Printf.sprintf "%s -> %s" l.Prov_graph.from_uri l.Prov_graph.to_uri)
  in
  Printf.sprintf
    "Source (execution trace):\n%s\nProvenance (explicit links):\n%s\n\
     Inherited links: %s\n"
    (Trace.source_table e.Paper.trace)
    (Prov_graph.provenance_table g)
    (String.concat ", " inherited_links)

(* --- Figure 3: the mappings --- *)

let fig3 (_ : Paper.t) = String.concat "\n" Paper.mapping_syntax ^ "\n"

(* --- Example 5: embedding tables --- *)

let pattern_result (e : Paper.t) ~phi ~state:i =
  let t = Weblab_xpath.Eval.eval_state (Paper.state e i) (Paper.phi phi) in
  let cols =
    List.filter (fun c -> c <> "node") (Table.columns t)
    |> List.map (fun c -> (c, "$" ^ c))
  in
  Table.rename (Table.project t (List.map fst cols)) cols

let ex5 e =
  let render (phi, state) =
    Printf.sprintf "R_phi%d(d%d):\n%s" phi state
      (Table.to_string (pattern_result e ~phi ~state))
  in
  String.concat "\n" (List.map render [ (1, 1); (3, 2); (4, 2); (4, 3) ])

(* --- Example 6: applications of mapping rules to document states --- *)

(* The example's rules: M1 : φ1 ⇒ φ3 and M2 : φ4 ⇒ φ4. *)
let example6_rule = function
  | 1 -> Rule.make ~name:"M1" ~source:(Paper.phi 1) ~target:(Paper.phi 3) ()
  | 2 -> Rule.make ~name:"M2" ~source:(Paper.phi 4) ~target:(Paper.phi 4) ()
  | n -> invalid_arg (Printf.sprintf "example6_rule %d" n)

let ex6_table e ~rule ~from_state ~to_state =
  let r = example6_rule rule in
  let t = Mapping.join_table r (Paper.state e from_state) (Paper.state e to_state) in
  let keep =
    List.filter
      (fun c -> not (String.length c > 4 && String.sub c 0 4 = "node"))
      (Table.columns t)
  in
  Table.rename (Table.project t keep)
    (List.map (fun c -> (c, "$" ^ c)) keep)

let ex6 e =
  Printf.sprintf "M1(d1, d2) = rho_in R_phi1(d1) |X| rho_out R_phi3(d2):\n%s\n\
                  M2(d2, d3) = rho_in R_phi4(d2) |X| rho_out R_phi4(d3):\n%s"
    (Table.to_string (ex6_table e ~rule:1 ~from_state:1 ~to_state:2))
    (Table.to_string (ex6_table e ~rule:2 ~from_state:2 ~to_state:3))

(* --- Example 7: restriction to out(c3) --- *)

let ex7_links e =
  let r = example6_rule 2 in
  let call = { Trace.service = "Translator"; time = 3 } in
  let app = Mapping.apply_call r ~doc:e.Paper.doc ~trace:e.Paper.trace ~call in
  app.Mapping.links

let ex7 e =
  let links = ex7_links e in
  "M2(c3) = M2(d2, d3) |X| out(c3):\n"
  ^ String.concat "\n" (List.map (fun (o, i) -> Printf.sprintf "%s -> %s" o i) links)
  ^ "\n"

(* --- Examples 8 and 9: the XQuery compilation --- *)

let ex8 (_ : Paper.t) =
  let q = Weblab_xquery.Xq_compile.compile_pattern_query (Paper.phi 1) in
  Weblab_xquery.Xq_print.to_string q

let ex9_rule () =
  Rule.make ~name:"M2" ~source:(Paper.phi 1) ~target:(Paper.phi 3) ()

let ex9_queries () =
  let r = ex9_rule () in
  let q =
    Weblab_xquery.Xq_compile.compile_rule_query (Rule.source r) (Rule.target r)
      ~service:"LanguageExtractor" ~time:2
  in
  (q, Weblab_xquery.Xq_optimize.merge_key_joins q)

let ex9 (_ : Paper.t) =
  let naive, optimized = ex9_queries () in
  Printf.sprintf "Generated query:\n%s\n\nOptimized query:\n%s\n"
    (Weblab_xquery.Xq_print.to_string naive)
    (Weblab_xquery.Xq_print.to_string optimized)

(* --- All artifacts, in paper order --- *)

let all e =
  [ ("Figure 1", fig1 e); ("Figure 2", fig2 e); ("Figure 3", fig3 e);
    ("Figure 4", fig4 e); ("Example 5", ex5 e); ("Example 6", ex6 e);
    ("Example 7", ex7 e); ("Example 8", ex8 e); ("Example 9", ex9 e) ]
