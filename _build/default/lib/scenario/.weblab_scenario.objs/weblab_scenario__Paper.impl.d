lib/scenario/paper.ml: Doc_state Langdata Language_extractor Normaliser Orchestrator Printf Schema Service Trace Translator Tree Weblab_prov Weblab_services Weblab_workflow Weblab_xml Weblab_xpath
