lib/scenario/figures.mli: Paper Prov_graph Strategy Table Weblab_prov Weblab_relalg Weblab_xquery
