lib/scenario/paper.mli: Doc_state Service Trace Tree Weblab_prov Weblab_workflow Weblab_xml Weblab_xpath
