(** Extractive summarization: the leading sentences of each TextContent,
    published as a new TextMediaUnit with [@kind="summary"] and a [@src]
    back-pointer. *)

open Weblab_xml
open Weblab_workflow

val summarize : ?sentences:int -> string -> string
(** The first [sentences] (default 2) sentences. *)

val pending : Tree.t -> Tree.node list

val run : ?sentences:int -> Tree.t -> unit

val service : ?sentences:int -> unit -> Service.t

val rules : string list
