(* Synthetic workload generation for tests and benchmarks: initial
   documents with a configurable number of media units, and standard
   service pipelines of configurable length. *)

open Weblab_xml
open Weblab_workflow

(* An initial document: a Resource root holding [units] MediaUnits, each
   with one NativeContent of raw multilingual "web" text, plus optionally
   image/audio units carrying latent text. *)
let make_document ?(units = 3) ?(images = 0) ?(audios = 0) ?(sentences = 3)
    ~seed () =
  let rng = Random.State.make [| seed |] in
  let doc = Orchestrator.initial_document () in
  let root = Tree.root doc in
  for i = 1 to units do
    let mu =
      Tree.new_element doc ~parent:root Schema.media_unit
        ~attrs:[ ("nr", string_of_int i) ]
    in
    Tree.set_uri doc mu (Printf.sprintf "mu%d" i);
    let lang = Corpus.random_language rng in
    let nc = Tree.new_element doc ~parent:mu Schema.native_content in
    ignore (Tree.new_text doc ~parent:nc (Corpus.html ~sentences rng lang))
  done;
  for i = 1 to images do
    let lang = Corpus.random_language rng in
    ignore
      (Tree.new_element doc ~parent:root Schema.image_media_unit
         ~attrs:
           [ ("nr", string_of_int i);
             (Media.latent_attr, Corpus.text ~sentences rng lang) ])
  done;
  for i = 1 to audios do
    let lang = Corpus.random_language rng in
    ignore
      (Tree.new_element doc ~parent:root Schema.audio_media_unit
         ~attrs:
           [ ("nr", string_of_int i);
             (Media.latent_attr, Corpus.text ~sentences rng lang) ])
  done;
  doc

(* The canonical media-mining pipeline of the paper's motivating use case,
   optionally extended with the downstream analytics services. *)
let standard_pipeline ?(extended = false) () =
  let base =
    [ Normaliser.service; Language_extractor.service; Translator.service () ]
  in
  if extended then
    base
    @ [ Tokenizer.service; Entity_extractor.service; Summarizer.service ();
        Sentiment.service ]
  else base

(* A pipeline of [n] calls cycling through the standard services —
   idempotent services simply find nothing new to do on later rounds
   unless new inputs appeared, so longer chains stay meaningful by
   re-normalising newly produced units (translation/summaries). *)
let chain_pipeline n =
  let cycle =
    [ Normaliser.service; Language_extractor.service; Translator.service ();
      Tokenizer.service; Entity_extractor.service; Summarizer.service ();
      Sentiment.service; Classifier.service; Geo_tagger.service ]
  in
  List.init n (fun i -> List.nth cycle (i mod List.length cycle))
