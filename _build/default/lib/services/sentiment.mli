(** Lexicon-based sentiment scoring of TextContent (meant for English,
    e.g. after translation): an Annotation/Sentiment element with the
    polarity score. *)

open Weblab_xml
open Weblab_workflow

val score : string -> int
(** Sum of the lexicon polarities of the (lowercased) tokens. *)

val polarity : int -> string
(** ["positive"], ["negative"] or ["neutral"]. *)

val run : Tree.t -> unit

val service : Service.t

val rules : string list
