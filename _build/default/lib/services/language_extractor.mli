(** Language identification — the LanguageExtractor of Figure 1.

    Scoring combines stopword hits (strong on real sentences) with
    letter-frequency similarity to reference profiles (fallback for short
    text); >95 % accuracy on the synthetic corpus is enforced by tests.
    The detected code lands in Annotation/Language under each
    TextMediaUnit. *)

open Weblab_xml
open Weblab_workflow

val detect : string -> Langdata.language

val stopword_score : string list -> Langdata.language -> float
(** Fraction of the (lowercased) words that are stopwords of the
    language. *)

val frequency_score : string -> Langdata.language -> float
(** Cosine similarity between the text's letter frequencies and the
    language's reference profile. *)

val run : Tree.t -> unit
(** The service body: annotate every un-annotated TextMediaUnit. *)

val service : Service.t

val rules : string list
(** M(LanguageExtractor) — includes the paper's M2. *)
