(** Deterministic synthetic corpus generator: pseudo-sentences assembled
    from per-language stopword and content vocabularies — statistically
    close enough to the language for the stopword-based identifier to
    reach >95 % accuracy (tested), with occasional gazetteer entities for
    the NER scenario. *)

val sentence :
  ?with_entities:bool -> Random.State.t -> Langdata.language -> string

val text :
  ?sentences:int ->
  ?with_entities:bool ->
  Random.State.t ->
  Langdata.language ->
  string

val html :
  ?sentences:int ->
  ?with_entities:bool ->
  Random.State.t ->
  Langdata.language ->
  string
(** The text wrapped in light markup, for the Normaliser to strip. *)

val random_language : Random.State.t -> Langdata.language

val pick : Random.State.t -> 'a list -> 'a

val capitalize : string -> string
