(* Heuristic named-entity recognition: gazetteer lookup first, then a
   capitalization heuristic for unknown names (capitalized words that are
   not sentence-initial).  Entities land in an Annotation as Entity
   elements with a @type. *)

open Weblab_xml
open Weblab_workflow

(* The gazetteer lookup is case-insensitive: normalized text is
   lowercased, so exact matching would miss every entity. *)
let gazetteer_lookup w =
  let wl = Textutil.lowercase w in
  List.find_map
    (fun (name, kind) ->
      if String.equal (Textutil.lowercase name) wl then Some (name, kind)
      else None)
    Langdata.gazetteer

let entities_of_text text =
  let sentences = Textutil.sentences text in
  let from_sentence s =
    let words = Textutil.tokenize s in
    List.mapi (fun i w -> (i, w)) words
    |> List.filter_map (fun (i, w) ->
           match gazetteer_lookup w with
           | Some (canonical, kind) -> Some (canonical, kind)
           | None ->
             if i > 0 && Textutil.capitalized w && String.length w > 2 then
               Some (w, "unknown")
             else None)
  in
  List.concat_map from_sentence sentences |> List.sort_uniq compare

let run doc =
  List.iter
    (fun unit ->
      if not (Schema.has_annotation doc unit Schema.entity) then
        match Schema.text_of_unit doc unit with
        | Some (_, text) ->
          let entities = entities_of_text text in
          if entities <> [] then begin
            let ann = Schema.new_resource doc ~parent:unit Schema.annotation in
            List.iter
              (fun (name, kind) ->
                let e =
                  Tree.new_element doc ~parent:ann Schema.entity
                    ~attrs:[ ("type", kind) ]
                in
                ignore (Tree.new_text doc ~parent:e name))
              entities
          end
        | None -> ())
    (Schema.text_media_units doc)

let service =
  Service.inproc ~name:"EntityExtractor"
    ~description:"extracts named entities from TextContent into Annotations"
    run

let rules =
  [ "E1: //TextMediaUnit[$x := @id]/TextContent ==> \
     //TextMediaUnit[$x := @id]/Annotation[Entity]" ]
