(* Embedded language resources for the simulated services: stopword lists
   and reference letter frequencies for language identification, content
   vocabularies for the synthetic corpus generator, and small bilingual
   lexicons for the dictionary translator. *)

type language = En | Fr | De | Es

let all_languages = [ En; Fr; De; Es ]

let code = function En -> "en" | Fr -> "fr" | De -> "de" | Es -> "es"

let of_code = function
  | "en" -> Some En
  | "fr" -> Some Fr
  | "de" -> Some De
  | "es" -> Some Es
  | _ -> None

let stopwords = function
  | En ->
    [ "the"; "of"; "and"; "a"; "to"; "in"; "is"; "it"; "you"; "that"; "he";
      "was"; "for"; "on"; "are"; "as"; "with"; "his"; "they"; "at"; "be";
      "this"; "have"; "from"; "or"; "one"; "had"; "by"; "word"; "but"; "not";
      "what"; "all"; "were"; "we"; "when"; "your"; "can"; "said"; "there" ]
  | Fr ->
    [ "le"; "la"; "les"; "de"; "des"; "du"; "et"; "un"; "une"; "est"; "en";
      "que"; "qui"; "dans"; "pour"; "pas"; "sur"; "avec"; "son"; "ne"; "se";
      "ce"; "il"; "elle"; "au"; "aux"; "par"; "plus"; "mais"; "ou"; "leur";
      "nous"; "vous"; "sont"; "cette"; "comme"; "tout"; "être"; "fait" ]
  | De ->
    [ "der"; "die"; "das"; "und"; "in"; "den"; "von"; "zu"; "mit"; "sich";
      "des"; "auf"; "für"; "ist"; "im"; "dem"; "nicht"; "ein"; "eine"; "als";
      "auch"; "es"; "an"; "werden"; "aus"; "er"; "hat"; "dass"; "sie"; "nach";
      "wird"; "bei"; "einer"; "um"; "am"; "sind"; "noch"; "wie"; "einem" ]
  | Es ->
    [ "el"; "la"; "de"; "que"; "y"; "a"; "en"; "un"; "ser"; "se"; "no";
      "haber"; "por"; "con"; "su"; "para"; "como"; "estar"; "tener"; "le";
      "lo"; "todo"; "pero"; "más"; "hacer"; "o"; "poder"; "decir"; "este";
      "ir"; "otro"; "ese"; "si"; "me"; "ya"; "ver"; "porque"; "dar"; "cuando" ]

(* Reference letter frequencies (%) — standard corpus statistics, coarse. *)
let letter_profile = function
  | En ->
    [| 8.2; 1.5; 2.8; 4.3; 12.7; 2.2; 2.0; 6.1; 7.0; 0.2; 0.8; 4.0; 2.4; 6.7;
       7.5; 1.9; 0.1; 6.0; 6.3; 9.1; 2.8; 1.0; 2.4; 0.2; 2.0; 0.1 |]
  | Fr ->
    [| 7.6; 0.9; 3.3; 3.7; 14.7; 1.1; 0.9; 0.7; 7.5; 0.6; 0.1; 5.5; 3.0; 7.1;
       5.8; 2.5; 1.4; 6.7; 7.9; 7.2; 6.3; 1.8; 0.1; 0.4; 0.3; 0.1 |]
  | De ->
    [| 6.5; 1.9; 3.1; 5.1; 16.4; 1.7; 3.0; 4.8; 6.5; 0.3; 1.4; 3.4; 2.5; 9.8;
       2.6; 0.7; 0.0; 7.0; 7.3; 6.2; 4.2; 0.8; 1.9; 0.0; 0.0; 1.1 |]
  | Es ->
    [| 12.5; 1.4; 4.7; 5.9; 13.7; 0.7; 1.0; 0.7; 6.3; 0.4; 0.0; 5.0; 3.2; 6.7;
       8.7; 2.5; 0.9; 6.9; 8.0; 4.6; 3.9; 0.9; 0.0; 0.2; 0.9; 0.5 |]

(* Content vocabulary used by the synthetic corpus generator. *)
let content_words = function
  | En ->
    [ "government"; "market"; "report"; "analysis"; "security"; "system";
      "president"; "economy"; "company"; "research"; "minister"; "agreement";
      "conference"; "network"; "technology"; "election"; "strategy"; "data";
      "attack"; "crisis"; "policy"; "energy"; "defence"; "program"; "media" ]
  | Fr ->
    [ "gouvernement"; "marché"; "rapport"; "analyse"; "sécurité"; "système";
      "président"; "économie"; "entreprise"; "recherche"; "ministre";
      "accord"; "conférence"; "réseau"; "technologie"; "élection";
      "stratégie"; "données"; "attaque"; "crise"; "politique"; "énergie";
      "défense"; "programme"; "médias" ]
  | De ->
    [ "regierung"; "markt"; "bericht"; "analyse"; "sicherheit"; "system";
      "präsident"; "wirtschaft"; "unternehmen"; "forschung"; "minister";
      "abkommen"; "konferenz"; "netzwerk"; "technologie"; "wahl";
      "strategie"; "daten"; "angriff"; "krise"; "politik"; "energie";
      "verteidigung"; "programm"; "medien" ]
  | Es ->
    [ "gobierno"; "mercado"; "informe"; "análisis"; "seguridad"; "sistema";
      "presidente"; "economía"; "empresa"; "investigación"; "ministro";
      "acuerdo"; "conferencia"; "red"; "tecnología"; "elección";
      "estrategia"; "datos"; "ataque"; "crisis"; "política"; "energía";
      "defensa"; "programa"; "medios" ]

(* Dictionary translations into English (the translator's pivot).  The
   pairs cover the content vocabulary and the most frequent stopwords, so
   that translated synthetic text is recognizably English. *)
let to_english = function
  | En -> []
  | Fr ->
    [ ("le", "the"); ("la", "the"); ("les", "the"); ("de", "of"); ("des", "of");
      ("du", "of"); ("et", "and"); ("un", "a"); ("une", "a"); ("est", "is");
      ("en", "in"); ("que", "that"); ("qui", "who"); ("dans", "in");
      ("pour", "for"); ("pas", "not"); ("sur", "on"); ("avec", "with");
      ("gouvernement", "government"); ("marché", "market"); ("rapport", "report");
      ("analyse", "analysis"); ("sécurité", "security"); ("système", "system");
      ("président", "president"); ("économie", "economy");
      ("entreprise", "company"); ("recherche", "research");
      ("ministre", "minister"); ("accord", "agreement");
      ("conférence", "conference"); ("réseau", "network");
      ("technologie", "technology"); ("élection", "election");
      ("stratégie", "strategy"); ("données", "data"); ("attaque", "attack");
      ("crise", "crisis"); ("politique", "policy"); ("énergie", "energy");
      ("défense", "defence"); ("programme", "program"); ("médias", "media") ]
  | De ->
    [ ("der", "the"); ("die", "the"); ("das", "the"); ("und", "and");
      ("in", "in"); ("von", "of"); ("zu", "to"); ("mit", "with");
      ("ist", "is"); ("nicht", "not"); ("ein", "a"); ("eine", "a");
      ("regierung", "government"); ("markt", "market"); ("bericht", "report");
      ("analyse", "analysis"); ("sicherheit", "security"); ("system", "system");
      ("präsident", "president"); ("wirtschaft", "economy");
      ("unternehmen", "company"); ("forschung", "research");
      ("minister", "minister"); ("abkommen", "agreement");
      ("konferenz", "conference"); ("netzwerk", "network");
      ("technologie", "technology"); ("wahl", "election");
      ("strategie", "strategy"); ("daten", "data"); ("angriff", "attack");
      ("krise", "crisis"); ("politik", "policy"); ("energie", "energy");
      ("verteidigung", "defence"); ("programm", "program"); ("medien", "media") ]
  | Es ->
    [ ("el", "the"); ("la", "the"); ("de", "of"); ("que", "that"); ("y", "and");
      ("a", "to"); ("en", "in"); ("un", "a"); ("no", "not"); ("por", "by");
      ("con", "with"); ("su", "its"); ("para", "for");
      ("gobierno", "government"); ("mercado", "market"); ("informe", "report");
      ("análisis", "analysis"); ("seguridad", "security"); ("sistema", "system");
      ("presidente", "president"); ("economía", "economy");
      ("empresa", "company"); ("investigación", "research");
      ("ministro", "minister"); ("acuerdo", "agreement");
      ("conferencia", "conference"); ("red", "network");
      ("tecnología", "technology"); ("elección", "election");
      ("estrategia", "strategy"); ("datos", "data"); ("ataque", "attack");
      ("crisis", "crisis"); ("política", "policy"); ("energía", "energy");
      ("defensa", "defence"); ("programa", "program"); ("medios", "media") ]

(* From-English lexicons, derived by inversion (first translation wins). *)
let from_english lang =
  to_english lang |> List.map (fun (a, b) -> (b, a))

(* Gazetteer for the named-entity extractor. *)
let gazetteer =
  [ ("Paris", "location"); ("London", "location"); ("Berlin", "location");
    ("Madrid", "location"); ("Geneva", "location"); ("Brussels", "location");
    ("France", "location"); ("Germany", "location"); ("Spain", "location");
    ("Europe", "location"); ("Washington", "location"); ("Moscow", "location");
    ("UNESCO", "organization"); ("NATO", "organization"); ("EADS", "organization");
    ("Cassidian", "organization"); ("Airbus", "organization");
    ("Interpol", "organization"); ("Europol", "organization");
    ("WebLab", "organization"); ("Reuters", "organization");
    ("Merkel", "person"); ("Sarkozy", "person"); ("Obama", "person");
    ("Hollande", "person"); ("Zapatero", "person"); ("Cameron", "person") ]

(* Polarity lexicon for the sentiment service. *)
let sentiment_lexicon =
  [ ("good", 1); ("great", 2); ("excellent", 2); ("positive", 1); ("success", 2);
    ("successful", 2); ("agreement", 1); ("growth", 1); ("peace", 2);
    ("improve", 1); ("improved", 1); ("win", 1); ("strong", 1); ("progress", 1);
    ("bad", -1); ("poor", -1); ("terrible", -2); ("negative", -1);
    ("failure", -2); ("crisis", -2); ("attack", -2); ("war", -2); ("loss", -1);
    ("weak", -1); ("decline", -1); ("threat", -2); ("risk", -1); ("fear", -1) ]
