(* The WebLab document vocabulary used by the service catalog, plus shared
   navigation helpers.  Element names follow Figure 1 of the paper. *)

open Weblab_xml
open Weblab_workflow

let resource = "Resource"
let media_unit = "MediaUnit"
let native_content = "NativeContent"
let image_media_unit = "ImageMediaUnit"
let audio_media_unit = "AudioMediaUnit"
let text_media_unit = "TextMediaUnit"
let text_content = "TextContent"
let annotation = "Annotation"
let language = "Language"
let tokens = "Tokens"
let entity = "Entity"
let sentiment = "Sentiment"

(* Attribute linking a derived TextMediaUnit to the unit or content it was
   computed from (set by services, exploited by mapping rules). *)
let src_attr = "src"

let elements doc name =
  if not (Tree.has_root doc) then []
  else
    Tree.descendant_or_self doc (Tree.root doc)
    |> List.filter (fun n -> Tree.is_element doc n && Tree.name doc n = name)

let child_named doc n name =
  List.find_opt
    (fun c -> Tree.is_element doc c && Tree.name doc c = name)
    (Tree.children doc n)

let children_named doc n name =
  List.filter
    (fun c -> Tree.is_element doc c && Tree.name doc c = name)
    (Tree.children doc n)

let text_media_units doc = elements doc text_media_unit

(* The TextContent child of a unit and its string value. *)
let text_of_unit doc unit =
  child_named doc unit text_content
  |> Option.map (fun c -> (c, Tree.string_value doc c))

let annotations_with doc unit child_name =
  children_named doc unit annotation
  |> List.filter (fun a -> child_named doc a child_name <> None)

let has_annotation doc unit child_name = annotations_with doc unit child_name <> []

let language_of_unit doc unit =
  match annotations_with doc unit language with
  | a :: _ ->
    Option.map (fun l -> Tree.string_value doc l) (child_named doc a language)
  | [] -> None

(* Promote a node to a resource if it is not one yet. *)
let ensure_resource doc n =
  if Tree.uri doc n = None then Tree.set_uri doc n (Orchestrator.fresh_uri doc)

(* A new resource element appended under [parent]. *)
let new_resource ?attrs doc ~parent name =
  let n = Tree.new_element ?attrs doc ~parent name in
  Tree.set_uri doc n (Orchestrator.fresh_uri doc);
  n
