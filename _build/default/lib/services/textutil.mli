(** Shared text-processing helpers for the simulated media-mining
    services.  Tokenization treats bytes ≥ 0x80 as word characters, so
    accented (UTF-8) words stay whole. *)

val is_letter : char -> bool

val is_word_char : char -> bool

val tokenize : string -> string list
(** Words in order, punctuation stripped. *)

val lowercase : string -> string

val sentences : string -> string list
(** Segmentation on [./!/?] followed by whitespace or end of input. *)

val normalize_whitespace : string -> string
(** Collapse whitespace runs into single spaces; trim. *)

val strip_markup : string -> string
(** Remove HTML/XML-ish tags (replaced by spaces). *)

val capitalized : string -> bool

val letter_frequencies : string -> float array
(** Normalized a..z histogram (all zeros for letterless input). *)

val cosine : float array -> float array -> float
