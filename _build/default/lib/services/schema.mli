(** The WebLab document vocabulary used by the service catalog, plus
    shared navigation helpers.  Element names follow Figure 1 of the
    paper. *)

open Weblab_xml

(** {1 Element names} *)

val resource : string
val media_unit : string
val native_content : string
val image_media_unit : string
val audio_media_unit : string
val text_media_unit : string
val text_content : string
val annotation : string
val language : string
val tokens : string
val entity : string
val sentiment : string

val src_attr : string
(** The attribute linking a derived TextMediaUnit to the unit or content
    it was computed from — set by services, exploited by mapping rules. *)

(** {1 Navigation} *)

val elements : Tree.t -> string -> Tree.node list
(** All elements with the given name, document order. *)

val child_named : Tree.t -> Tree.node -> string -> Tree.node option

val children_named : Tree.t -> Tree.node -> string -> Tree.node list

val text_media_units : Tree.t -> Tree.node list

val text_of_unit : Tree.t -> Tree.node -> (Tree.node * string) option
(** The TextContent child of a unit and its string value. *)

val annotations_with : Tree.t -> Tree.node -> string -> Tree.node list
(** The unit's Annotation children containing the given element. *)

val has_annotation : Tree.t -> Tree.node -> string -> bool

val language_of_unit : Tree.t -> Tree.node -> string option
(** The Annotation/Language value, if present. *)

(** {1 Resource helpers} *)

val ensure_resource : Tree.t -> Tree.node -> unit
(** Promote the node to a resource (fresh URI) if it is not one yet. *)

val new_resource :
  ?attrs:(string * string) list -> Tree.t -> parent:Tree.node -> string -> Tree.node
(** A new resource element appended under [parent]. *)
