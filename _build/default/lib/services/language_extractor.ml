(* Language identification (the LanguageExtractor of Figure 1).

   Scoring combines stopword hits (strong signal on real sentences) with
   letter-frequency similarity to reference profiles (fallback for short
   or unusual text).  The detected code is stored as
   Annotation/Language under the TextMediaUnit. *)

open Weblab_xml
open Weblab_workflow

let stopword_score words lang =
  let sw = Langdata.stopwords lang in
  let hits = List.length (List.filter (fun w -> List.mem w sw) words) in
  if words = [] then 0.0
  else float_of_int hits /. float_of_int (List.length words)

let frequency_score text lang =
  let profile = Array.map (fun p -> p /. 100.0) (Langdata.letter_profile lang) in
  Textutil.cosine (Textutil.letter_frequencies text) profile

let detect text =
  let words = List.map Textutil.lowercase (Textutil.tokenize text) in
  let best =
    List.fold_left
      (fun (best_lang, best_score) lang ->
        let score =
          (3.0 *. stopword_score words lang) +. frequency_score text lang
        in
        if score > best_score then (lang, score) else (best_lang, best_score))
      (Langdata.En, neg_infinity)
      Langdata.all_languages
  in
  fst best

let run doc =
  List.iter
    (fun unit ->
      if not (Schema.has_annotation doc unit Schema.language) then
        match Schema.text_of_unit doc unit with
        | Some (_, text) when String.trim text <> "" ->
          let lang = detect text in
          let ann =
            Schema.new_resource doc ~parent:unit Schema.annotation
          in
          let l = Tree.new_element doc ~parent:ann Schema.language in
          ignore (Tree.new_text doc ~parent:l (Langdata.code lang))
        | Some _ | None -> ())
    (Schema.text_media_units doc)

let service =
  Service.inproc ~name:"LanguageExtractor"
    ~description:"detects the language of TextContent and stores it as an \
                  Annotation"
    run

(* M2 of Figure 3: the annotation depends on the sibling TextContent of
   the same TextMediaUnit. *)
let rules =
  [ "L1: //TextMediaUnit[$x := @id]/TextContent ==> \
     //TextMediaUnit[$x := @id]/Annotation[Language]" ]
