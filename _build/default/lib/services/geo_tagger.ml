(* Geographic tagging: location entities found in TextContent are resolved
   against a coordinates gazetteer and published as Annotation/Place
   elements with @lat/@lon — downstream consumers (maps, region filters)
   are a staple of media-mining front ends.

   The tagger prefers to reuse the EntityExtractor's location annotations
   when present (a genuine inter-service data dependency, captured by rule
   G2); otherwise it scans the text itself. *)

open Weblab_xml
open Weblab_workflow

let place = "Place"

(* Coordinates for the gazetteer locations (degrees, rounded). *)
let coordinates =
  [ ("Paris", (48.85, 2.35)); ("London", (51.51, -0.13));
    ("Berlin", (52.52, 13.41)); ("Madrid", (40.42, -3.70));
    ("Geneva", (46.20, 6.14)); ("Brussels", (50.85, 4.35));
    ("Washington", (38.91, -77.04)); ("Moscow", (55.76, 37.62));
    ("France", (46.23, 2.21)); ("Germany", (51.17, 10.45));
    ("Spain", (40.46, -3.75)); ("Europe", (54.53, 15.26)) ]

let lookup name =
  List.find_map
    (fun (n, coords) ->
      if String.lowercase_ascii n = String.lowercase_ascii name then Some (n, coords)
      else None)
    coordinates

(* Location names present in a unit: from Entity annotations when the
   extractor ran, from raw tokens otherwise. *)
let locations_of_unit doc unit =
  let from_entities =
    Schema.annotations_with doc unit Schema.entity
    |> List.concat_map (fun ann -> Schema.children_named doc ann Schema.entity)
    |> List.filter (fun e -> Tree.attr doc e "type" = Some "location")
    |> List.map (fun e -> Tree.string_value doc e)
  in
  if from_entities <> [] then from_entities
  else
    match Schema.text_of_unit doc unit with
    | Some (_, text) ->
      Textutil.tokenize text
      |> List.filter (fun w -> lookup w <> None)
    | None -> []

let run doc =
  List.iter
    (fun unit ->
      if not (Schema.has_annotation doc unit place) then begin
        let places =
          locations_of_unit doc unit
          |> List.filter_map lookup
          |> List.sort_uniq compare
        in
        if places <> [] then begin
          let ann = Schema.new_resource doc ~parent:unit Schema.annotation in
          List.iter
            (fun (name, (lat, lon)) ->
              let el =
                Tree.new_element doc ~parent:ann place
                  ~attrs:
                    [ ("lat", Printf.sprintf "%.2f" lat);
                      ("lon", Printf.sprintf "%.2f" lon) ]
              in
              ignore (Tree.new_text doc ~parent:el name))
            places
        end
      end)
    (Schema.text_media_units doc)

let service =
  Service.inproc ~name:"GeoTagger"
    ~description:"resolves location mentions to coordinates" run

(* G1: places come from the text; G2: and from the location entities when
   the EntityExtractor ran first. *)
let rules =
  [ "G1: //TextMediaUnit[$x := @id]/TextContent ==> \
     //TextMediaUnit[$x := @id]/Annotation[Place]";
    "G2: //TextMediaUnit[$x := @id]/Annotation[Entity] ==> \
     //TextMediaUnit[$x := @id]/Annotation[Place]" ]
