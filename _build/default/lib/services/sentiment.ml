(* Lexicon-based sentiment scoring of TextContent (meant to run on English
   text, e.g. after translation).  The polarity score and its sign land in
   an Annotation/Sentiment element. *)

open Weblab_xml
open Weblab_workflow

let score text =
  Textutil.tokenize text
  |> List.map Textutil.lowercase
  |> List.fold_left
       (fun acc w ->
         match List.assoc_opt w Langdata.sentiment_lexicon with
         | Some s -> acc + s
         | None -> acc)
       0

let polarity s = if s > 0 then "positive" else if s < 0 then "negative" else "neutral"

let run doc =
  List.iter
    (fun unit ->
      if not (Schema.has_annotation doc unit Schema.sentiment) then
        match Schema.text_of_unit doc unit with
        | Some (_, text) ->
          let s = score text in
          let ann = Schema.new_resource doc ~parent:unit Schema.annotation in
          let el =
            Tree.new_element doc ~parent:ann Schema.sentiment
              ~attrs:[ ("score", string_of_int s) ]
          in
          ignore (Tree.new_text doc ~parent:el (polarity s))
        | None -> ())
    (Schema.text_media_units doc)

let service =
  Service.inproc ~name:"SentimentAnalyzer"
    ~description:"scores the polarity of TextContent into an Annotation" run

let rules =
  [ "P1: //TextMediaUnit[$x := @id]/TextContent ==> \
     //TextMediaUnit[$x := @id]/Annotation[Sentiment]" ]
