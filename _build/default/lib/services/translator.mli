(** Dictionary-based translation — the Translator of Figure 1.  Each
    TextMediaUnit whose detected language differs from the target gets an
    English twin with a Language annotation; the twin records its origin
    in [@src]. *)

open Weblab_xml
open Weblab_workflow

val translate : source_lang:Langdata.language -> string -> string
(** Word-by-word through the embedded lexicon; unknown words pass
    through. *)

val pending : target:Langdata.language -> Tree.t -> Tree.node list
(** Units still to translate: language known and ≠ target, not already
    translated. *)

val run : target:Langdata.language -> Tree.t -> unit

val service : ?target:Langdata.language -> unit -> Service.t
(** Default target: English. *)

val rules : string list
(** T1 (depends on the source text) and T2 (depends on the language
    annotation that routed the unit). *)
