(** Heuristic named-entity recognition: case-insensitive gazetteer lookup
    (normalized text is lowercased) plus a capitalization heuristic for
    unknown names.  Entities land in an Annotation as Entity elements with
    a [@type] (person/organization/location/unknown). *)

open Weblab_xml
open Weblab_workflow

val entities_of_text : string -> (string * string) list
(** (canonical name, kind) pairs, distinct. *)

val run : Tree.t -> unit

val service : Service.t

val rules : string list
