(** Geographic tagging: location mentions resolved against a coordinates
    gazetteer into Annotation/Place elements with [@lat]/[@lon].  Reuses
    the EntityExtractor's location annotations when present (the
    inter-service dependency of rule G2); falls back to scanning the text
    otherwise. *)

open Weblab_xml
open Weblab_workflow

val lookup : string -> (string * (float * float)) option
(** Case-insensitive gazetteer lookup: canonical name and (lat, lon). *)

val locations_of_unit : Tree.t -> Tree.node -> string list

val run : Tree.t -> unit

val service : Service.t

val rules : string list
(** G1 (from the text) and G2 (from the entity annotations). *)
