(* Tokenization statistics: an Annotation/Tokens element recording token
   and distinct-token counts of each TextContent. *)

open Weblab_xml
open Weblab_workflow

let run doc =
  List.iter
    (fun unit ->
      if not (Schema.has_annotation doc unit Schema.tokens) then
        match Schema.text_of_unit doc unit with
        | Some (_, text) ->
          let words = Textutil.tokenize text in
          let distinct =
            List.sort_uniq String.compare (List.map Textutil.lowercase words)
          in
          let ann = Schema.new_resource doc ~parent:unit Schema.annotation in
          ignore
            (Tree.new_element doc ~parent:ann Schema.tokens
               ~attrs:
                 [ ("count", string_of_int (List.length words));
                   ("distinct", string_of_int (List.length distinct)) ])
        | None -> ())
    (Schema.text_media_units doc)

let service =
  Service.inproc ~name:"Tokenizer"
    ~description:"counts tokens of each TextContent into an Annotation" run

let rules =
  [ "K1: //TextMediaUnit[$x := @id]/TextContent ==> \
     //TextMediaUnit[$x := @id]/Annotation[Tokens]" ]
