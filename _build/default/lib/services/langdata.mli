(** Embedded language resources: stopword lists and reference letter
    frequencies for language identification, content vocabularies for the
    synthetic corpus generator, bilingual lexicons for the dictionary
    translator, and the NER/sentiment lexicons. *)

type language = En | Fr | De | Es

val all_languages : language list

val code : language -> string
(** ISO 639-1: "en", "fr", "de", "es". *)

val of_code : string -> language option

val stopwords : language -> string list

val letter_profile : language -> float array
(** Reference letter frequencies in percent, a..z. *)

val content_words : language -> string list
(** The corpus generator's vocabulary. *)

val to_english : language -> (string * string) list
(** The translator's lexicon (empty for English). *)

val from_english : language -> (string * string) list

val gazetteer : (string * string) list
(** (name, kind) with kind ∈ person/organization/location. *)

val sentiment_lexicon : (string * int) list
(** Word polarity scores. *)
