lib/services/media.mli: Service Weblab_workflow
