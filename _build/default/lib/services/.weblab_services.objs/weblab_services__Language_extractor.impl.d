lib/services/language_extractor.ml: Array Langdata List Schema Service String Textutil Tree Weblab_workflow Weblab_xml
