lib/services/catalog.mli: Service Weblab_workflow
