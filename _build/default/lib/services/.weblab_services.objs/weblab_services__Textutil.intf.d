lib/services/textutil.mli:
