lib/services/langdata.ml: List
