lib/services/tokenizer.mli: Service Tree Weblab_workflow Weblab_xml
