lib/services/media.ml: List Option Schema Service String Textutil Tree Weblab_workflow Weblab_xml
