lib/services/workload.mli: Service Tree Weblab_workflow Weblab_xml
