lib/services/schema.mli: Tree Weblab_xml
