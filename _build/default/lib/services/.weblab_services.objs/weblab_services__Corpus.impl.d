lib/services/corpus.ml: Char Langdata List Printf Random String
