lib/services/langdata.mli:
