lib/services/normaliser.mli: Service Tree Weblab_workflow Weblab_xml
