lib/services/geo_tagger.mli: Service Tree Weblab_workflow Weblab_xml
