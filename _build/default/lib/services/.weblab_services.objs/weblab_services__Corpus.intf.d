lib/services/corpus.mli: Langdata Random
