lib/services/language_extractor.mli: Langdata Service Tree Weblab_workflow Weblab_xml
