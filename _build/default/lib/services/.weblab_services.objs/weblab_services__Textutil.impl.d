lib/services/textutil.ml: Array Buffer Char List String
