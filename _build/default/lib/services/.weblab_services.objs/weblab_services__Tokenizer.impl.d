lib/services/tokenizer.ml: List Schema Service String Textutil Tree Weblab_workflow Weblab_xml
