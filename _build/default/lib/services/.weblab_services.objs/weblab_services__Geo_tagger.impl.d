lib/services/geo_tagger.ml: List Printf Schema Service String Textutil Tree Weblab_workflow Weblab_xml
