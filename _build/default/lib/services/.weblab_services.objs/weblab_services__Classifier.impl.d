lib/services/classifier.ml: List Schema Service Textutil Tree Weblab_workflow Weblab_xml
