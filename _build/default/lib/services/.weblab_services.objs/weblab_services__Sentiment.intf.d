lib/services/sentiment.mli: Service Tree Weblab_workflow Weblab_xml
