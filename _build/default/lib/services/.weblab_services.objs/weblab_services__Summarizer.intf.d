lib/services/summarizer.mli: Service Tree Weblab_workflow Weblab_xml
