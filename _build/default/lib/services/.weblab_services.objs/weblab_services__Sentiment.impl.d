lib/services/sentiment.ml: Langdata List Schema Service Textutil Tree Weblab_workflow Weblab_xml
