lib/services/translator.mli: Langdata Service Tree Weblab_workflow Weblab_xml
