lib/services/deduplicator.mli: Service Tree Weblab_workflow Weblab_xml
