lib/services/translator.ml: Langdata List Option Printf Schema Service String Textutil Tree Weblab_workflow Weblab_xml
