lib/services/classifier.mli: Service Tree Weblab_workflow Weblab_xml
