lib/services/schema.ml: List Option Orchestrator Tree Weblab_workflow Weblab_xml
