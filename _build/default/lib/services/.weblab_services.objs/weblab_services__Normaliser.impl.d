lib/services/normaliser.ml: List Option Orchestrator Printer Schema Service Textutil Tree Weblab_workflow Weblab_xml Xml_parser
