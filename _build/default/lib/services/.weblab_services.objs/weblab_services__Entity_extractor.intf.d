lib/services/entity_extractor.mli: Service Tree Weblab_workflow Weblab_xml
