lib/services/catalog.ml: Classifier Deduplicator Entity_extractor Geo_tagger Language_extractor List Media Normaliser Sentiment Service String Summarizer Tokenizer Translator Weblab_workflow
