lib/services/deduplicator.ml: Hashtbl List Printf Schema Service String Textutil Tree Weblab_workflow Weblab_xml
