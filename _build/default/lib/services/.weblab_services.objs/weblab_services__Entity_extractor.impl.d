lib/services/entity_extractor.ml: Langdata List Schema Service String Textutil Tree Weblab_workflow Weblab_xml
