(* Deterministic synthetic corpus generator: pseudo-sentences assembled
   from per-language stopword and content vocabularies.  The statistical
   profile is close enough to the language for the LanguageExtractor's
   stopword scoring to work, which is all the pipeline needs. *)

let pick rng list = List.nth list (Random.State.int rng (List.length list))

let capitalize s =
  if s = "" then s
  else String.make 1 (Char.uppercase_ascii s.[0]) ^ String.sub s 1 (String.length s - 1)

(* A sentence alternates function words and content words; with a small
   probability a gazetteer entity is dropped in, which feeds the
   entity-extraction scenario. *)
let sentence ?(with_entities = true) rng lang =
  let stop = Langdata.stopwords lang in
  let content = Langdata.content_words lang in
  let len = 6 + Random.State.int rng 10 in
  let words =
    List.init len (fun i ->
        if with_entities && Random.State.int rng 12 = 0 then
          fst (pick rng Langdata.gazetteer)
        else if i mod 2 = 0 then pick rng stop
        else pick rng content)
  in
  match words with
  | [] -> "."
  | first :: rest -> String.concat " " (capitalize first :: rest) ^ "."

let text ?(sentences = 3) ?with_entities rng lang =
  String.concat " " (List.init sentences (fun _ -> sentence ?with_entities rng lang))

(* A raw "web page": text wrapped in light markup, which the Normaliser
   strips. *)
let html ?sentences ?with_entities rng lang =
  let body = text ?sentences ?with_entities rng lang in
  Printf.sprintf "<html><body><p>%s</p></body></html>" body

let random_language rng = pick rng Langdata.all_languages
