(* Keyword-based topic classification: each TextMediaUnit gets an
   Annotation/Topic with the best-scoring category (politics, economy,
   security, technology), plus the score — the classic media-mining
   categorization stage of WebLab pipelines. *)

open Weblab_xml
open Weblab_workflow

let topic = "Topic"

(* Category keyword sets, matched on lowercased tokens (the catalog's
   pipelines classify after normalisation/translation, i.e. on English). *)
let categories =
  [ ("politics",
     [ "government"; "president"; "minister"; "election"; "policy";
       "agreement"; "conference" ]);
    ("economy",
     [ "market"; "economy"; "company"; "growth"; "crisis"; "report" ]);
    ("security",
     [ "security"; "attack"; "defence"; "war"; "threat"; "risk" ]);
    ("technology",
     [ "technology"; "network"; "data"; "system"; "research"; "program" ]) ]

let scores text =
  let words = List.map Textutil.lowercase (Textutil.tokenize text) in
  List.map
    (fun (cat, keywords) ->
      (cat, List.length (List.filter (fun w -> List.mem w keywords) words)))
    categories

let classify text =
  let best =
    List.fold_left
      (fun (bc, bs) (c, s) -> if s > bs then (c, s) else (bc, bs))
      ("general", 0) (scores text)
  in
  best

let run doc =
  List.iter
    (fun unit ->
      if not (Schema.has_annotation doc unit topic) then
        match Schema.text_of_unit doc unit with
        | Some (_, text) ->
          let category, score = classify text in
          let ann = Schema.new_resource doc ~parent:unit Schema.annotation in
          let el =
            Tree.new_element doc ~parent:ann topic
              ~attrs:[ ("score", string_of_int score) ]
          in
          ignore (Tree.new_text doc ~parent:el category)
        | None -> ())
    (Schema.text_media_units doc)

let service =
  Service.inproc ~name:"Classifier"
    ~description:"classifies TextContent into topic categories" run

let rules =
  [ "C1: //TextMediaUnit[$x := @id]/TextContent ==> \
     //TextMediaUnit[$x := @id]/Annotation[Topic]" ]
