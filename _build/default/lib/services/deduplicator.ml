(* Near-duplicate detection over TextMediaUnits: word-shingle Jaccard
   similarity groups near-identical units into DuplicateGroup resources —
   a standard media-mining stage (syndicated articles, re-crawls).

   Provenance-wise this is the library's flagship many-to-many case: every
   group depends on all of its member units, which rule D1 captures by
   joining on the @group value the service stamps. *)

open Weblab_xml
open Weblab_workflow

let duplicate_group = "DuplicateGroup"

(* 3-word shingles of the lowercased token stream. *)
let shingles text =
  let words = List.map Textutil.lowercase (Textutil.tokenize text) in
  let rec windows acc = function
    | a :: (b :: c :: _ as rest) -> windows ((a ^ " " ^ b ^ " " ^ c) :: acc) rest
    | _ -> acc
  in
  List.sort_uniq String.compare (windows [] words)

let jaccard a b =
  if a = [] && b = [] then 1.0
  else begin
    let inter = List.length (List.filter (fun x -> List.mem x b) a) in
    let union = List.length a + List.length b - inter in
    if union = 0 then 0.0 else float_of_int inter /. float_of_int union
  end

let similar ?(threshold = 0.6) t1 t2 = jaccard (shingles t1) (shingles t2) >= threshold

(* Greedy single-link clustering of the units by similarity. *)
let clusters ?threshold doc =
  let units =
    Schema.text_media_units doc
    |> List.filter_map (fun u ->
           match Schema.text_of_unit doc u, Tree.uri doc u with
           | Some (_, text), Some uri -> Some (u, uri, text)
           | _ -> None)
  in
  let assigned = Hashtbl.create 16 in
  let groups = ref [] in
  List.iter
    (fun (u, uri, text) ->
      if not (Hashtbl.mem assigned uri) then begin
        let members =
          List.filter
            (fun (_, uri', text') ->
              (not (Hashtbl.mem assigned uri'))
              && (String.equal uri uri' || similar ?threshold text text'))
            units
        in
        List.iter (fun (_, uri', _) -> Hashtbl.replace assigned uri' ()) members;
        if List.length members > 1 then groups := List.rev members :: !groups
      end;
      ignore u)
    units;
  List.rev !groups

let run ?threshold doc =
  let root = Tree.root doc in
  if Schema.elements doc duplicate_group = [] then
    List.iteri
      (fun i members ->
        let gid = Printf.sprintf "dup%d" (i + 1) in
        let group =
          Schema.new_resource doc ~parent:root duplicate_group
            ~attrs:[ ("group", gid) ]
        in
        List.iter
          (fun (_, uri, _) ->
            ignore
              (Tree.new_element doc ~parent:group "Member"
                 ~attrs:[ ("ref", uri) ]))
          members)
      (clusters ?threshold doc)

let service ?threshold () =
  Service.inproc ~name:"Deduplicator"
    ~description:"groups near-duplicate TextMediaUnits" (run ?threshold)

(* Each group depends on every unit whose @id one of its Member elements
   references. *)
let rules =
  [ "D1: //TextMediaUnit[$x := @id] ==> //DuplicateGroup[Member/@ref = $x]" ]
