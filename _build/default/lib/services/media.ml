(* Simulated non-text media services.

   The real WebLab runs OCR and speech-to-text engines on binary payloads;
   neither proprietary engines nor media corpora are available here, so the
   simulation stores the "latent" text of an image or audio unit in a
   @latent attribute and the services recover it with characteristic
   degradations (OCR confuses glyph pairs, ASR drops short words).  What
   matters for provenance is preserved exactly: a black-box service reads
   one identified fragment and appends a derived TextMediaUnit. *)

open Weblab_xml
open Weblab_workflow

let latent_attr = "latent"

(* Classic OCR confusion pairs applied with a deterministic pattern. *)
let ocr_noise text =
  String.mapi
    (fun i c ->
      if i mod 17 = 13 then
        match c with
        | 'l' -> '1'
        | 'o' -> '0'
        | 'e' -> 'c'
        | 'm' -> 'n'
        | c -> c
      else c)
    text

(* ASR drops words of length <= 2 (mumbled function words). *)
let asr_noise text =
  Textutil.tokenize text
  |> List.filter (fun w -> String.length w > 2)
  |> String.concat " "

let recover ~unit_name ~noise doc =
  let root = Tree.root doc in
  let claimed =
    Schema.text_media_units doc
    |> List.filter_map (fun u -> Tree.attr doc u Schema.src_attr)
  in
  Schema.elements doc unit_name
  |> List.filter (fun n ->
         match Tree.uri doc n with
         | Some u -> not (List.mem u claimed)
         | None -> true)
  |> List.iter (fun media ->
         match Tree.attr doc media latent_attr with
         | Some latent ->
           Schema.ensure_resource doc media;
           let src = Option.get (Tree.uri doc media) in
           let out =
             Schema.new_resource doc ~parent:root Schema.text_media_unit
               ~attrs:[ (Schema.src_attr, src) ]
           in
           let content = Schema.new_resource doc ~parent:out Schema.text_content in
           ignore (Tree.new_text doc ~parent:content (noise latent))
         | None -> ())

let ocr_service =
  Service.inproc ~name:"OcrService"
    ~description:"recovers text from ImageMediaUnits (simulated OCR)"
    (recover ~unit_name:Schema.image_media_unit ~noise:ocr_noise)

let asr_service =
  Service.inproc ~name:"SpeechToText"
    ~description:"recovers text from AudioMediaUnits (simulated ASR)"
    (recover ~unit_name:Schema.audio_media_unit ~noise:asr_noise)

let ocr_rules =
  [ "O1: //ImageMediaUnit[$x := @id] ==> //TextMediaUnit[$x := @src]" ]

let asr_rules =
  [ "A1: //AudioMediaUnit[$x := @id] ==> //TextMediaUnit[$x := @src]" ]
