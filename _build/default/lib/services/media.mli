(** Simulated non-text media services.

    The real WebLab runs OCR and speech-to-text engines on binary
    payloads; neither proprietary engines nor media corpora are available,
    so the simulation stores the "latent" text of an image or audio unit
    in a [@latent] attribute and the services recover it with
    characteristic degradations (OCR confuses glyph pairs, ASR drops short
    words).  What matters for provenance is preserved exactly: a black-box
    service reads one identified fragment and appends a derived
    TextMediaUnit with a [@src] back-pointer. *)

open Weblab_workflow

val latent_attr : string

val ocr_noise : string -> string
(** Deterministic glyph confusions (l→1, o→0, e→c, m→n). *)

val asr_noise : string -> string
(** Drops words of length ≤ 2. *)

val ocr_service : Service.t

val asr_service : Service.t

val ocr_rules : string list

val asr_rules : string list
