(** The service catalog (§6): implementations together with their
    provenance mapping rules M(s), keyed by service name — the component
    the Mapper pulls rules from when building provenance graphs. *)

open Weblab_workflow

type entry = {
  service : Service.t;
  rules : string list;
      (** the service's mapping rules, in concrete syntax (parse with
          {!Weblab_prov.Rule_parser}) *)
}

val entries : entry list

val find : string -> entry option
(** Look a service up by name. *)

val service_names : string list

val rulebook_syntax : (string * string list) list
(** The whole rulebook in concrete syntax. *)
