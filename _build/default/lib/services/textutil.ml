(* Shared text-processing helpers for the simulated media-mining services. *)

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

(* Bytes ≥ 0x80 are UTF-8 lead/continuation bytes of accented letters. *)
let is_word_char c =
  is_letter c || (c >= '0' && c <= '9') || c = '\'' || Char.code c >= 128

(* Words of a text, in order, punctuation stripped. *)
let tokenize text =
  let n = String.length text in
  let rec loop i acc =
    if i >= n then List.rev acc
    else if is_word_char text.[i] then begin
      let rec stop j = if j < n && is_word_char text.[j] then stop (j + 1) else j in
      let j = stop i in
      loop j (String.sub text i (j - i) :: acc)
    end
    else loop (i + 1) acc
  in
  loop 0 []

let lowercase = String.lowercase_ascii

(* Sentence segmentation on ./!/? followed by whitespace (or end). *)
let sentences text =
  let n = String.length text in
  let out = ref [] in
  let start = ref 0 in
  let flush stop =
    let s = String.trim (String.sub text !start (stop - !start)) in
    if s <> "" then out := s :: !out;
    start := stop
  in
  String.iteri
    (fun i c ->
      if (c = '.' || c = '!' || c = '?') && (i + 1 >= n || text.[i + 1] = ' '
                                             || text.[i + 1] = '\n')
      then flush (i + 1))
    text;
  flush n;
  List.rev !out

(* Collapse runs of whitespace into single spaces. *)
let normalize_whitespace text =
  let buf = Buffer.create (String.length text) in
  let pending = ref false in
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then pending := true
      else begin
        if !pending && Buffer.length buf > 0 then Buffer.add_char buf ' ';
        pending := false;
        Buffer.add_char buf c
      end)
    text;
  Buffer.contents buf

(* Remove HTML/XML-ish markup, scripts excluded wholesale. *)
let strip_markup text =
  let buf = Buffer.create (String.length text) in
  let in_tag = ref false in
  String.iter
    (fun c ->
      if c = '<' then in_tag := true
      else if c = '>' then begin
        in_tag := false;
        Buffer.add_char buf ' '
      end
      else if not !in_tag then Buffer.add_char buf c)
    text;
  Buffer.contents buf

let capitalized w = String.length w > 0 && w.[0] >= 'A' && w.[0] <= 'Z'

(* Letter frequency histogram (a..z), normalized. *)
let letter_frequencies text =
  let counts = Array.make 26 0 in
  let total = ref 0 in
  String.iter
    (fun c ->
      let c = Char.lowercase_ascii c in
      if c >= 'a' && c <= 'z' then begin
        counts.(Char.code c - Char.code 'a') <- counts.(Char.code c - Char.code 'a') + 1;
        incr total
      end)
    text;
  if !total = 0 then Array.make 26 0.0
  else Array.map (fun c -> float_of_int c /. float_of_int !total) counts

let cosine a b =
  let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
  Array.iteri
    (fun i x ->
      dot := !dot +. (x *. b.(i));
      na := !na +. (x *. x);
      nb := !nb +. (b.(i) *. b.(i)))
    a;
  if !na = 0.0 || !nb = 0.0 then 0.0 else !dot /. sqrt (!na *. !nb)
