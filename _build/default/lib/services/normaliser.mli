(** The Normaliser of Figure 1: turns each raw NativeContent into a clean
    TextMediaUnit/TextContent fragment (markup stripped, whitespace
    collapsed, lowercased).  The source NativeContent is promoted to a
    resource — the node-3-to-r3 promotion of Figure 4 — and the produced
    unit points back to it through [@src]. *)

open Weblab_xml
open Weblab_workflow

val normalize : string -> string
(** Strip markup, collapse whitespace, lowercase. *)

val pending : Tree.t -> Tree.node list
(** NativeContent nodes no TextMediaUnit claims yet (makes the service
    idempotent). *)

val run : Tree.t -> unit

val service : Service.t
(** The in-process integration. *)

val blackbox_service : Service.t
(** The same service as a true black box (serialized XML in/out); its
    outputs are identified by the Recorder's XML diff.  Produces the same
    provenance as {!service} (tested). *)

val rules : string list
(** M(Normaliser). *)
