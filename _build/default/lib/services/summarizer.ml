(* Extractive summarization: the leading sentences of each TextContent,
   published as a new TextMediaUnit with @kind="summary". *)

open Weblab_xml
open Weblab_workflow

let summarize ?(sentences = 2) text =
  Textutil.sentences text
  |> List.filteri (fun i _ -> i < sentences)
  |> String.concat " "

let pending doc =
  let summarized =
    Schema.text_media_units doc
    |> List.filter (fun u -> Tree.attr doc u "kind" = Some "summary")
    |> List.filter_map (fun u -> Tree.attr doc u Schema.src_attr)
  in
  Schema.text_media_units doc
  |> List.filter (fun u ->
         Tree.attr doc u "kind" <> Some "summary"
         &&
         match Tree.uri doc u with
         | Some uri -> not (List.mem uri summarized)
         | None -> false)

let run ?sentences doc =
  let root = Tree.root doc in
  List.iter
    (fun unit ->
      match Schema.text_of_unit doc unit with
      | Some (_, text) when String.trim text <> "" ->
        let uri = Option.get (Tree.uri doc unit) in
        let out =
          Schema.new_resource doc ~parent:root Schema.text_media_unit
            ~attrs:[ (Schema.src_attr, uri); ("kind", "summary") ]
        in
        let content = Schema.new_resource doc ~parent:out Schema.text_content in
        ignore (Tree.new_text doc ~parent:content (summarize ?sentences text))
      | Some _ | None -> ())
    (pending doc)

let service ?sentences () =
  Service.inproc ~name:"Summarizer"
    ~description:"produces summary TextMediaUnits from TextContent"
    (run ?sentences)

let rules =
  [ "S1: //TextMediaUnit[$x := @id]/TextContent ==> \
     //TextMediaUnit[$x := @src][@kind = 'summary']" ]
