(* The Normaliser of Figure 1: turns each raw NativeContent into a clean
   TextMediaUnit/TextContent fragment (markup stripped, whitespace
   collapsed, lowercased), appended under the Resource root.  The source
   NativeContent is promoted to a resource (the r3 promotion of Figure 4)
   and the produced unit points back to it through @src. *)

open Weblab_xml
open Weblab_workflow

let normalize text =
  Textutil.normalize_whitespace (Textutil.strip_markup text) |> Textutil.lowercase

(* NativeContent nodes not yet normalized: no TextMediaUnit points to them. *)
let pending doc =
  let claimed =
    Schema.text_media_units doc
    |> List.filter_map (fun u -> Tree.attr doc u Schema.src_attr)
  in
  Schema.elements doc Schema.native_content
  |> List.filter (fun nc ->
         match Tree.uri doc nc with
         | Some u -> not (List.mem u claimed)
         | None -> true)

let run doc =
  let root = Tree.root doc in
  List.iter
    (fun nc ->
      Schema.ensure_resource doc nc;
      let src = Option.get (Tree.uri doc nc) in
      let unit =
        Schema.new_resource doc ~parent:root Schema.text_media_unit
          ~attrs:[ (Schema.src_attr, src) ]
      in
      let content = Schema.new_resource doc ~parent:unit Schema.text_content in
      ignore (Tree.new_text doc ~parent:content (normalize (Tree.string_value doc nc))))
    (pending doc)

let service =
  Service.inproc ~name:"Normaliser"
    ~description:"normalizes NativeContent into TextMediaUnit/TextContent" run

(* The data-dependency mappings M(Normaliser). *)
let rules =
  [ "N1: //NativeContent[$x := @id] ==> //TextMediaUnit[$x := @src]" ]

(* The same service as a true black box: it receives the serialized
   document, re-parses it, builds the extended document and returns its
   serialization.  The Recorder identifies its outputs through the XML
   diff — the integration mode real WebLab web services use. *)
let blackbox_service =
  Service.blackbox ~name:"Normaliser"
    ~description:"black-box variant of the Normaliser" (fun xml ->
      let doc = Xml_parser.parse xml in
      let root = Tree.root doc in
      List.iter
        (fun nc ->
          (* Promote the source (the diff reports the added @id) and build
             the normalized unit; URIs are left for the Recorder except
             the promotion, which must be stable across the round-trip. *)
          (if Tree.uri doc nc = None then
             Tree.set_uri doc nc (Orchestrator.fresh_uri doc));
          let src = Option.get (Tree.uri doc nc) in
          let unit =
            Tree.new_element doc ~parent:root Schema.text_media_unit
              ~attrs:[ (Schema.src_attr, src) ]
          in
          let content = Tree.new_element doc ~parent:unit Schema.text_content in
          (* Nested resources must carry their own identity: the Recorder
             only auto-identifies fragment roots. *)
          Tree.set_uri doc content (Orchestrator.fresh_uri doc);
          ignore
            (Tree.new_text doc ~parent:content
               (normalize (Tree.string_value doc nc))))
        (pending doc);
      Printer.to_string doc)
