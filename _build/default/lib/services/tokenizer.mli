(** Tokenization statistics: an Annotation/Tokens element with token and
    distinct-token counts for each TextContent. *)

open Weblab_xml
open Weblab_workflow

val run : Tree.t -> unit

val service : Service.t

val rules : string list
