(** Synthetic workload generation for tests and benchmarks: seeded
    multilingual documents and standard service pipelines. *)

open Weblab_xml
open Weblab_workflow

val make_document :
  ?units:int ->
  ?images:int ->
  ?audios:int ->
  ?sentences:int ->
  seed:int ->
  unit ->
  Tree.t
(** An initial document: a Resource root with [units] MediaUnits of raw
    multilingual "web" text (defaults: 3 units, 3 sentences each), plus
    optional image/audio units carrying latent text for the OCR/ASR
    simulators.  Deterministic in [seed]. *)

val standard_pipeline : ?extended:bool -> unit -> Service.t list
(** Normaliser → LanguageExtractor → Translator; [extended] appends
    Tokenizer, EntityExtractor, Summarizer and SentimentAnalyzer. *)

val chain_pipeline : int -> Service.t list
(** A pipeline of [n] calls cycling through the catalog services —
    used for workflow-length scaling experiments. *)
