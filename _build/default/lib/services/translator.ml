(* Dictionary-based translation (the Translator of Figure 1).

   For every TextMediaUnit whose detected language differs from the
   target, a new TextMediaUnit is appended with the word-by-word
   translation and a Language annotation for the target language.  The
   new unit records its origin in @src — and it also consumed the
   language annotation, which rule T2 captures. *)

open Weblab_xml
open Weblab_workflow

let translate_words lexicon words =
  List.map
    (fun w ->
      match List.assoc_opt (Textutil.lowercase w) lexicon with
      | Some w' -> w'
      | None -> w)
    words

let translate ~source_lang text =
  let lexicon = Langdata.to_english source_lang in
  String.concat " " (translate_words lexicon (Textutil.tokenize text))

(* Units to translate: language known, not the target, not already
   translated (no unit with @src pointing at them and a target-language
   annotation), and not themselves produced by translation. *)
let pending ~target doc =
  let translated_srcs =
    Schema.text_media_units doc
    |> List.filter (fun u -> Schema.language_of_unit doc u = Some (Langdata.code target))
    |> List.filter_map (fun u -> Tree.attr doc u Schema.src_attr)
  in
  Schema.text_media_units doc
  |> List.filter (fun u ->
         match Schema.language_of_unit doc u, Tree.uri doc u with
         | Some code, Some uri ->
           code <> Langdata.code target
           && Langdata.of_code code <> None
           && not (List.mem uri translated_srcs)
         | _ -> false)

let run ~target doc =
  let root = Tree.root doc in
  List.iter
    (fun unit ->
      match Schema.text_of_unit doc unit, Schema.language_of_unit doc unit with
      | Some (_, text), Some code ->
        let source_lang = Option.get (Langdata.of_code code) in
        let uri = Option.get (Tree.uri doc unit) in
        let out =
          Schema.new_resource doc ~parent:root Schema.text_media_unit
            ~attrs:[ (Schema.src_attr, uri) ]
        in
        let content = Schema.new_resource doc ~parent:out Schema.text_content in
        ignore (Tree.new_text doc ~parent:content (translate ~source_lang text));
        let ann = Schema.new_resource doc ~parent:out Schema.annotation in
        let l = Tree.new_element doc ~parent:ann Schema.language in
        ignore (Tree.new_text doc ~parent:l (Langdata.code target))
      | _ -> ())
    (pending ~target doc)

let service ?(target = Langdata.En) () =
  Service.inproc ~name:"Translator"
    ~description:
      (Printf.sprintf "translates TextMediaUnits into %s" (Langdata.code target))
    (run ~target)

(* T1: the translation depends on the source unit's text; T2: it also
   depends on the language annotation that routed it. *)
let rules =
  [ "T1: //TextMediaUnit[$x := @id]/TextContent ==> //TextMediaUnit[$x := @src]";
    "T2: //TextMediaUnit[$x := @id]/Annotation[Language] ==> \
     //TextMediaUnit[$x := @src]" ]
