(** Keyword-based topic classification: an Annotation/Topic with the
    best-scoring category (politics, economy, security, technology —
    ["general"] when nothing matches) for each TextMediaUnit. *)

open Weblab_xml
open Weblab_workflow

val categories : (string * string list) list
(** Category → keyword set (matched on lowercased tokens). *)

val classify : string -> string * int
(** Best (category, score); [("general", 0)] when nothing scores. *)

val run : Tree.t -> unit

val service : Service.t

val rules : string list
