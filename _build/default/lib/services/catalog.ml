(* The service catalog (§6): service implementations together with their
   provenance mapping rules M(s), keyed by service name — the component the
   Mapper pulls rules from when building provenance graphs. *)

open Weblab_workflow

type entry = {
  service : Service.t;
  rules : string list;  (* concrete rule syntax; parsed by the core library *)
}

let entries : entry list =
  [ { service = Normaliser.service; rules = Normaliser.rules };
    { service = Language_extractor.service; rules = Language_extractor.rules };
    { service = Translator.service (); rules = Translator.rules };
    { service = Tokenizer.service; rules = Tokenizer.rules };
    { service = Entity_extractor.service; rules = Entity_extractor.rules };
    { service = Summarizer.service (); rules = Summarizer.rules };
    { service = Sentiment.service; rules = Sentiment.rules };
    { service = Classifier.service; rules = Classifier.rules };
    { service = Geo_tagger.service; rules = Geo_tagger.rules };
    { service = Deduplicator.service (); rules = Deduplicator.rules };
    { service = Media.ocr_service; rules = Media.ocr_rules };
    { service = Media.asr_service; rules = Media.asr_rules } ]

let find name =
  List.find_opt (fun e -> String.equal (Service.name e.service) name) entries

let service_names = List.map (fun e -> Service.name e.service) entries

(* The rulebook in concrete syntax: (service name, rule strings). *)
let rulebook_syntax =
  List.map (fun e -> (Service.name e.service, e.rules)) entries
