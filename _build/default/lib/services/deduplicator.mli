(** Near-duplicate detection: word-shingle Jaccard similarity groups
    near-identical TextMediaUnits into DuplicateGroup resources whose
    Member elements reference the units.  Rule D1 — the library's
    flagship many-to-many case — makes every group depend on all of its
    members via the [Member/@ref = $x] path-to-attribute join. *)

open Weblab_xml
open Weblab_workflow

val duplicate_group : string

val shingles : string -> string list
(** Distinct 3-word shingles of the lowercased token stream. *)

val jaccard : string list -> string list -> float

val similar : ?threshold:float -> string -> string -> bool
(** Default threshold 0.6. *)

val clusters :
  ?threshold:float -> Tree.t -> (Tree.node * string * string) list list
(** Greedy single-link clusters of (unit node, uri, text); singletons are
    dropped. *)

val run : ?threshold:float -> Tree.t -> unit

val service : ?threshold:float -> unit -> Service.t

val rules : string list
