(* A realistic multi-document news-monitoring pipeline — the kind of
   workflow the paper's introduction motivates (EADS/Cassidian media
   mining):

   - a crawl of multilingual "web pages" plus an image and an audio clip,
   - OCR / speech-to-text to recover text from non-text media,
   - normalisation, language identification, translation to English,
   - entity extraction, summarisation and sentiment scoring,
   - fine-grained provenance inference, then impact analysis: when one
     source document turns out to be unreliable, find every derived
     resource that is tainted.

   Run with:  dune exec examples/news_pipeline.exe *)

open Weblab_xml
open Weblab_workflow
open Weblab_services
open Weblab_prov

let rulebook services =
  List.filter_map
    (fun svc ->
      Catalog.find (Service.name svc)
      |> Option.map (fun e ->
             (Service.name svc, List.map Rule_parser.parse e.Catalog.rules)))
    services

let () =
  (* A seeded synthetic crawl: 4 text units (mixed languages), 1 image,
     1 audio clip. *)
  let doc = Workload.make_document ~units:4 ~images:1 ~audios:1 ~seed:2013 () in
  let services =
    [ Media.ocr_service; Media.asr_service ]
    @ Workload.standard_pipeline ~extended:true ()
  in
  let rb = rulebook services in
  let exec, graph =
    Engine.run_with_provenance ~strategy:`Rewrite doc services rb
  in

  Printf.printf "Pipeline: %s\n\n"
    (String.concat " -> " (List.map Service.name services));
  Printf.printf "Final document: %d nodes, %d identified resources\n"
    (Tree.size exec.Engine.doc)
    (List.length (Tree.resources exec.Engine.doc));
  Printf.printf "Provenance graph: %d links (acyclic: %b, temporally sound: %b)\n\n"
    (Prov_graph.size graph) (Prov_graph.is_acyclic graph)
    (Prov_graph.temporally_sound graph);

  print_endline "=== Execution trace ===";
  print_string (Trace.source_table exec.Engine.trace);

  print_endline "\n=== Provenance links (rule-annotated) ===";
  print_string (Prov_graph.provenance_table ~with_rule:true graph);

  (* --- Impact analysis: source mu2 is found to be unreliable.  The
     explicit links point at the NativeContent resources, so impact and
     quality both need the inherited closure (mu2's dependents inherit
     through its children). --- *)
  let graph = Inheritance.close exec.Engine.doc graph in
  let tainted_root = "mu2" in
  let tainted = Query.influences_transitive graph tainted_root in
  Printf.printf
    "\n=== Impact analysis ===\nSource %s is unreliable; %d derived \
     resources are tainted:\n  %s\n"
    tainted_root (List.length tainted)
    (String.concat ", " tainted);

  (* Cross-check the taint set against the final document: every tainted
     TextMediaUnit is listed with its kind and language. *)
  List.iter
    (fun uri ->
      match Tree.find_resource exec.Engine.doc uri with
      | Some n when Tree.name exec.Engine.doc n = Schema.text_media_unit ->
        Printf.printf "  - %s: TextMediaUnit lang=%s kind=%s\n" uri
          (Option.value ~default:"?"
             (Schema.language_of_unit exec.Engine.doc n))
          (Option.value ~default:"full"
             (Tree.attr exec.Engine.doc n "kind"))
      | _ -> ())
    tainted;

  (* --- Quality propagation (the paper's §1 motivation): the unreliable
     source gets a low assessed score, lossy recovery stages attenuate,
     and everything under 0.5 lands in the review queue. --- *)
  let config =
    { Quality.default_config with
      Quality.attenuation =
        (fun s -> match s with
           | "OcrService" -> 0.9  (* glyph confusions *)
           | "SpeechToText" -> 0.85
           | "EntityExtractor" -> 0.95  (* heuristic *)
           | _ -> 1.0) }
  in
  let sources = [ (tainted_root, 0.3) ] in
  let queue = Quality.below ~config graph ~sources ~threshold:0.5 in
  Printf.printf "\n=== Quality review queue (score < 0.5) ===\n%s\n"
    (Quality.to_string queue);

  (* --- Service-level lineage via SPARQL over the PROV export. --- *)
  let store = Prov_export.to_store graph in
  print_endline "\n=== SPARQL: which activities were informed by which? ===";
  let table =
    Weblab_rdf.Sparql.run store
      "SELECT ?a ?b WHERE { ?a prov:wasInformedBy ?b }"
  in
  print_string (Weblab_relalg.Table.to_string table);

  (* --- Per-call summary. --- *)
  print_endline "\n=== Per-call input/output summary ===";
  List.iter
    (fun (call : Trace.call) ->
      if call.Trace.time > 0 then
        Printf.printf "  t%-2d %-18s consumed [%s] produced [%s]\n"
          call.Trace.time call.Trace.service
          (String.concat ", " (Query.call_used graph call))
          (String.concat ", " (Query.call_generated graph call)))
    (Trace.calls exec.Engine.trace)
