(* Parallel media fusion — the §8 extension in a realistic shape.

   An intelligence-fusion workflow processes one report through three
   concurrent branches:

                      ┌── OCR ──── Normalise/Lang (images)
     acquisition ─────┼── ASR ──── Normalise/Lang (audio)
                      └── Normalise ── Lang        (text)
                      └──────────┬────────────────┘
                                Join: summarizer over everything

   The branches are concurrent: although execution interleaves them (the
   scheduler is breadth-first, so their timestamps interleave too), no
   provenance link may cross from one branch to a sibling.  The example
   shows the channel metadata, the happened-before relation, and compares
   channel-aware inference with (incorrect) timestamp-only inference.

   Run with:  dune exec examples/parallel_fusion.exe *)

open Weblab_workflow
open Weblab_services
open Weblab_prov

let rulebook_for names =
  List.filter_map
    (fun name ->
      Catalog.find name
      |> Option.map (fun e ->
             (name, List.map Rule_parser.parse e.Catalog.rules)))
    names

let () =
  let doc = Workload.make_document ~units:2 ~images:1 ~audios:1 ~seed:99 () in
  (* The image branch tokenizes its own recovered text; the audio branch
     runs concurrently.  Because this simulation shares one arena, the
     Tokenizer physically sees the sibling's fresh unit too — but the
     declared control flow says it could not have: channel-aware
     provenance must refuse that dependency, while timestamp-only
     inference would assert it. *)
  let wf =
    Parallel.(
      Seq
        [ Par
            [ Nested ("image-branch",
                      Seq [ Call Media.ocr_service; Call Tokenizer.service ]);
              Nested ("audio-branch",
                      Seq [ Call Media.asr_service ]);
              Nested ("text-branch",
                      Seq [ Call Normaliser.service ]) ];
          Call Language_extractor.service;
          Call (Summarizer.service ()) ])
  in
  let rb =
    rulebook_for
      [ "OcrService"; "SpeechToText"; "Normaliser"; "Tokenizer";
        "LanguageExtractor"; "Summarizer" ]
  in
  let exec, pexec, g = Engine.run_parallel ~strategy:`Rewrite doc wf rb in

  print_endline "=== Schedule (note: branch calls interleave) ===";
  List.iter
    (fun (c : Trace.call) ->
      if c.Trace.time > 0 then
        Printf.printf "  t%-2d %-18s channel %s\n" c.Trace.time c.Trace.service
          (Option.value ~default:"?" (Parallel.channel_of pexec c.Trace.time)))
    (Trace.calls exec.Engine.trace);

  print_endline "\n=== Happened-before (excerpt) ===";
  let calls =
    Trace.calls exec.Engine.trace
    |> List.filter (fun (c : Trace.call) -> c.Trace.time > 0)
  in
  List.iter
    (fun (a : Trace.call) ->
      let after =
        List.filter
          (fun (b : Trace.call) ->
            Parallel.happened_before pexec a.Trace.time b.Trace.time)
          calls
      in
      Printf.printf "  %-14s precedes: %s\n" a.Trace.service
        (String.concat ", " (List.map (fun c -> c.Trace.service) after)))
    calls;

  print_endline "\n=== Provenance (channel-aware) ===";
  print_string (Prov_graph.provenance_table ~with_rule:true g);

  (* Show the difference with timestamp-only inference. *)
  let g_naive =
    Strategy.infer ~strategy:`Rewrite ~doc ~trace:exec.Engine.trace rb
  in
  let key gr =
    Prov_graph.links gr
    |> List.map (fun l -> (l.Prov_graph.from_uri, l.Prov_graph.to_uri))
    |> List.sort_uniq compare
  in
  let spurious = List.filter (fun l -> not (List.mem l (key g))) (key g_naive) in
  Printf.printf
    "\nTimestamp-only inference would add %d spurious cross-branch link(s):\n"
    (List.length spurious);
  List.iter (fun (b, a) -> Printf.printf "  %s -> %s  (WRONG)\n" b a) spurious;

  (* A composite view: collapse each branch into one module. *)
  let view =
    Views.by_services
      [ ("MediaRecovery", [ "OcrService"; "SpeechToText"; "Normaliser" ]);
        ("Analysis", [ "LanguageExtractor"; "Summarizer" ]) ]
  in
  print_endline "\n=== Module-level graph (composite view) ===";
  List.iter
    (fun (a, b) -> Printf.printf "  %s wasInformedBy %s\n" a b)
    (Views.module_graph g view);

  (* Fast reachability over the frozen graph. *)
  let idx = Reachability.build g in
  let summaries =
    Prov_graph.labeled_resources g
    |> List.filter_map (fun (uri, c) ->
           if c.Trace.service = "Summarizer" then Some uri else None)
  in
  print_endline "\n=== Upstream sources of each summary (indexed closure) ===";
  List.iter
    (fun s ->
      Printf.printf "  %s <= %s\n" s
        (String.concat ", " (Reachability.ancestors idx s)))
    summaries
