(* The §5 extensions in action: position-based mappings and the four
   Skolem-function aggregation patterns.

   Scenario: a ClusteringService reads identified Article resources and
   emits unidentified Cluster/Topic summaries grouped by a @topic value —
   exactly the situation Skolem functions address: the produced entities
   have no identifiers of their own, so ground terms f(topic) name them.

   Run with:  dune exec examples/skolem_aggregation.exe *)

open Weblab_xml
open Weblab_prov

let document () =
  Xml_parser.parse
    {|<R id="r1" s="Source" t="0">
        <Article id="art1" topic="energy" s="Source" t="0"/>
        <Article id="art2" topic="energy" s="Source" t="0"/>
        <Article id="art3" topic="defence" s="Source" t="0"/>
        <Article id="art4" topic="defence" s="Source" t="0"/>
        <Article id="art5" topic="energy" s="Source" t="0"/>
        <Cluster topic="energy"/>
        <Cluster topic="defence"/>
        <Digest topic="energy"/>
        <Digest topic="energy"/>
        <Digest topic="defence"/>
      </R>|}

let show title (app : Mapping.application) =
  Printf.printf "=== %s ===\n" title;
  Printf.printf "links (entity -> source):\n";
  List.iter (fun (o, i) -> Printf.printf "  %s -> %s\n" o i) app.Mapping.links;
  if app.Mapping.members <> [] then begin
    Printf.printf "members (entity <- matched XML node):\n";
    List.iter
      (fun (e, m) -> Printf.printf "  %s has member %s\n" e m)
      app.Mapping.members
  end;
  print_newline ()

let apply rule doc =
  let s = Doc_state.final doc in
  Mapping.apply_states rule s s

let () =
  let doc = document () in

  (* Many-to-one, written out in rule syntax: one Cluster gathers all the
     Articles sharing a @topic; cluster(topic) names it. *)
  let many_to_one =
    Rule_parser.parse
      "C1: //Article[$x := @topic] ==> //Cluster[cluster($x) = @id]"
  in
  show "many-to-one: clusters gather articles by topic"
    (apply many_to_one doc);

  (* One-to-many with target-side grouping: Digests sharing a @topic come
     from the articles of that topic; the join on $x restricts the
     cross-product to matching topics. *)
  let grouped =
    Rule_parser.parse
      "C2: //Article[$x := @topic] ==> \
       //Digest[$x := @topic][digest($x) = @id]"
  in
  show "grouped digests: members grouped by the digest's own topic"
    (apply grouped doc);

  (* One-to-one via the library constructor. *)
  let one_to_one =
    Skolem.rule ~kind:Skolem.One_to_one ~f:"copy" ~src:"Article" ~tgt:"Cluster" ()
  in
  show "one-to-one: each article yields one synthetic derivative"
    (apply one_to_one doc);

  (* --- Position-based §5 mapping. --- *)
  let pos_doc =
    Xml_parser.parse
      {|<R id="r1">
          <Batch id="b1"><Item id="i11"/><Item id="i12"/></Batch>
          <Batch id="b2"><Item id="i21"/></Batch>
          <Report id="rep1"/><Report id="rep2"/>
        </R>|}
  in
  let positional =
    Rule_parser.parse
      "P: //Batch[Item][$p := position()]/Item ==> //Report[$p = position()]"
  in
  show "positional: items of the i-th batch feed the i-th report"
    (apply positional pos_doc);

  (* Feed the aggregation into a provenance graph with prov:hadMember. *)
  let app = apply grouped doc in
  let g = Prov_graph.create () in
  List.iter
    (fun (o, i) -> Prov_graph.add_link g ~rule:"C2" ~from_uri:o ~to_uri:i)
    app.Mapping.links;
  List.iter
    (fun (entity, member) -> Prov_graph.add_member g ~entity ~member)
    app.Mapping.members;
  print_endline "=== PROV export of the aggregation (Turtle) ===";
  print_string (Prov_export.to_turtle g)
