(* The Figure 5 architecture end to end, split into its three parts:

   1. Recording: a workflow runs; the Recorder labels resources and the
      execution trace is persisted (XML here; RDF also available) — the
      final document goes to the "Resource Repository" (a string).
   2. Graph construction: later — conceptually in another process — the
      Mapper reloads the document and the trace, pulls each service's
      mapping rules from the Service Catalog, and materializes the
      provenance graph.
   3. Request manager: queries hit the Provenance store, which serves the
      materialized graph from cache after the first request and answers
      reachability questions through the closure index.

   Run with:  dune exec examples/request_manager.exe *)

open Weblab_xml
open Weblab_workflow
open Weblab_services
open Weblab_prov

let () =
  (* ---- 1. Recording ---- *)
  let doc = Workload.make_document ~units:3 ~seed:2026 () in
  let services = Workload.standard_pipeline ~extended:true () in
  let trace = Orchestrator.execute doc services in
  let resource_repository = Printer.to_string doc in
  let trace_store = Trace_io.to_xml trace in
  Printf.printf
    "Recorded: document of %d bytes, trace of %d bytes (%d calls)\n\n"
    (String.length resource_repository)
    (String.length trace_store)
    (List.length (Trace.calls trace));

  (* ---- 2. Graph construction (from the persisted artifacts only) ---- *)
  let doc' = Xml_parser.parse resource_repository in
  (* Arena timestamps are session state: rebuild them from the persisted
     @t labels before inferring. *)
  Doc_state.restore_timestamps doc';
  let trace' = Trace_io.of_xml trace_store in
  let rulebook =
    Trace.calls trace'
    |> List.filter_map (fun (c : Trace.call) ->
           Catalog.find c.Trace.service
           |> Option.map (fun e ->
                  (c.Trace.service,
                   List.map Rule_parser.parse e.Catalog.rules)))
  in
  let cache = Prov_store.create () in
  let materializations = ref 0 in
  let materialize () =
    incr materializations;
    let g =
      Strategy.infer ~strategy:`Rewrite ~doc:doc' ~trace:trace' rulebook
    in
    Inheritance.close doc' g
  in

  (* ---- 3. Request manager ---- *)
  let exec_id = "exec-2026-07-04" in
  let queries =
    [ "SELECT ?b ?a WHERE { ?b prov:wasDerivedFrom ?a } LIMIT 5";
      "SELECT ?e WHERE { ?e prov:wasGeneratedBy ?act . \
       ?act prov:wasAssociatedWith \
       <http://weblab.ow2.org/prov#service/Summarizer> }";
      "ASK { ?b prov:wasDerivedFrom ?a . FILTER(?b != ?a) }" ]
  in
  List.iter
    (fun q ->
      ignore (Prov_store.request cache ~id:exec_id ~materialize);
      let store = Option.get (Prov_store.store_of cache ~id:exec_id) in
      Printf.printf "Query: %s\n" q;
      (match Weblab_rdf.Sparql.run_result store q with
       | Weblab_rdf.Sparql.Solutions t ->
         print_string (Weblab_relalg.Table.to_string t)
       | Weblab_rdf.Sparql.Boolean b -> Printf.printf "  -> %B\n" b);
      print_newline ())
    queries;
  let s = Prov_store.stats cache in
  Printf.printf
    "Served %d queries with %d materialization(s) (cache: %d hits, %d misses)\n\n"
    (List.length queries) !materializations s.Prov_store.hits s.Prov_store.misses;

  (* Reachability through the cached index. *)
  let g = Prov_store.request cache ~id:exec_id ~materialize in
  (match Prov_graph.labeled_resources g with
   | [] -> ()
   | resources ->
     let uri, _ = List.nth resources (List.length resources - 1) in
     let up = Prov_store.ancestors cache ~id:exec_id ~materialize uri in
     Printf.printf "Upstream closure of %s (served by the cached index): %s\n"
       uri (String.concat ", " up));
  Printf.printf "Total materializations at the end: %d\n" !materializations
