examples/parallel_fusion.mli:
