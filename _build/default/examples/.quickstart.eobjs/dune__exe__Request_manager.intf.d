examples/request_manager.mli:
