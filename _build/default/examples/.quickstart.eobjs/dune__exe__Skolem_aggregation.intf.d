examples/skolem_aggregation.mli:
