examples/skolem_aggregation.ml: Doc_state List Mapping Printf Prov_export Prov_graph Rule_parser Skolem Weblab_prov Weblab_xml Xml_parser
