examples/news_pipeline.mli:
