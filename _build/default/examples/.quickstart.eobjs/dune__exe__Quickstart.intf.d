examples/quickstart.mli:
