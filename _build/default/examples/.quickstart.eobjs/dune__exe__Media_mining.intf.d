examples/media_mining.mli:
