examples/media_mining.ml: Figures List Paper Printf Weblab_prov Weblab_scenario
