(* The paper's running media-mining use case (§2), replayed end to end with
   the exact resource numbering of Figures 1-4, followed by every worked
   example of the paper regenerated live.

   Run with:  dune exec examples/media_mining.exe *)

open Weblab_scenario

let () =
  let e = Paper.run () in
  print_endline
    "WebLab PROV — the paper's running example, regenerated from a live \
     execution\n";
  List.iter
    (fun (title, body) ->
      Printf.printf "=== %s ===\n%s\n" title body)
    (Figures.all e);

  (* Beyond the figures: the provenance graph as DOT and as PROV Turtle. *)
  let g = Figures.inherited_graph e in
  print_endline "=== Provenance graph (Graphviz DOT) ===";
  print_string (Weblab_prov.Dot.to_dot g);
  print_endline "\n=== PROV-RDF (Turtle) ===";
  print_string (Weblab_prov.Prov_export.to_turtle g)
