(* Quickstart: the smallest end-to-end use of the library.

   1. Build a WebLab document with one raw text.
   2. Run a three-service workflow (normalise, detect language, translate).
   3. Infer fine-grained provenance from the final document and the trace.
   4. Query it and export it as PROV RDF.

   Run with:  dune exec examples/quickstart.exe *)

open Weblab_xml
open Weblab_workflow
open Weblab_services
open Weblab_prov

let () =
  (* 1. An initial document: a Resource with one MediaUnit/NativeContent. *)
  let doc = Orchestrator.initial_document () in
  let media_unit = Tree.new_element doc ~parent:(Tree.root doc) Schema.media_unit in
  let native = Tree.new_element doc ~parent:media_unit Schema.native_content in
  ignore
    (Tree.new_text doc ~parent:native
       "<p>Le gouvernement a publié un rapport sur la sécurité des \
        données.</p>");

  (* 2. The workflow: three black-box services, executed sequentially. *)
  let services =
    [ Normaliser.service; Language_extractor.service; Translator.service () ]
  in

  (* 3. The rulebook: each service's data-dependency mappings, written in
     the XPath-with-variables syntax of the paper and parsed here. *)
  let rulebook =
    [ ("Normaliser", List.map Rule_parser.parse Normaliser.rules);
      ("LanguageExtractor", List.map Rule_parser.parse Language_extractor.rules);
      ("Translator", List.map Rule_parser.parse Translator.rules) ]
  in

  (* Execute and infer provenance post-hoc (single-pass Rewrite strategy). *)
  let exec, graph =
    Engine.run_with_provenance ~strategy:`Rewrite ~inheritance:true doc
      services rulebook
  in

  print_endline "=== Execution trace (who produced what) ===";
  print_string (Trace.source_table exec.Engine.trace);

  print_endline "\n=== Inferred provenance links ===";
  print_string (Prov_graph.provenance_table ~with_rule:true graph);

  (* 4. Ask lineage questions. *)
  let translation =
    Prov_graph.labeled_resources graph
    |> List.find_map (fun (uri, call) ->
           if call.Trace.service = "Translator" then Some uri else None)
  in
  (match translation with
   | Some uri ->
     Printf.printf "\nThe translation %s transitively depends on: %s\n" uri
       (String.concat ", " (Query.depends_on_transitive graph uri))
   | None -> print_endline "\n(no translation was produced)");

  print_endline "\n=== PROV (Turtle), first lines ===";
  Prov_export.to_turtle graph
  |> String.split_on_char '\n'
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline
