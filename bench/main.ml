(* Benchmark harness (Bechamel): one Test per experiment row of
   DESIGN.md §3.

   The paper has no quantitative evaluation — §6 defers the performance
   study to future work — so rows F1-E9 time the regeneration of the
   paper's artifacts, and rows P1-P6 are the deferred study: evaluation
   strategies, scaling in document size and rule count, the Example 9
   optimizer, and the substrates.  EXPERIMENTS.md records the measured
   numbers next to what the paper reports (shapes, not absolutes). *)

open Bechamel
open Toolkit
open Weblab_xml
open Weblab_workflow
open Weblab_services
open Weblab_prov

(* ---------- configuration (CLI / env) ----------

   The CI smoke job runs [--quick] (or WEBLAB_BENCH_QUICK=1): one size per
   scaling series and a tiny Bechamel quota — enough to prove every
   benchmark still runs, useless for numbers.  [--json PATH] (or
   WEBLAB_BENCH_JSON) dumps the estimates for the artifact upload. *)

let quick =
  ref
    (match Sys.getenv_opt "WEBLAB_BENCH_QUICK" with
    | Some ("" | "0") | None -> false
    | Some _ -> true)

let json_path = ref (Sys.getenv_opt "WEBLAB_BENCH_JSON")

(* [--only SUBSTR] (or WEBLAB_BENCH_ONLY) keeps only the tests whose name
   contains the substring — how CI uploads a dedicated fault/* artifact
   without paying for the full suite twice. *)
let only = ref (Sys.getenv_opt "WEBLAB_BENCH_ONLY")

(* The jobs axis of the par/* series; [--jobs N] narrows it to {1, N}. *)
let par_jobs = ref [ 1; 2; 4; 8 ]

(* [--parallel-report PATH] runs the wall-clock parallel speedup study
   (P14) instead of the Bechamel suite and writes the machine-readable
   BENCH_parallel.json artifact. *)
let parallel_report = ref None

(* [--serve-report PATH] boots the serving daemon in-process on an
   ephemeral port, drives many concurrent client sessions to completion
   (each checked byte-for-byte against an equivalent offline run) and
   writes the BENCH_serve.json artifact: sessions/sec and query latency
   percentiles.  Runs instead of the Bechamel suite; exits nonzero on any
   protocol error or turtle mismatch. *)
let serve_report = ref None

(* [--ingest-report PATH] runs the wall-clock streaming-ingest study
   instead of the Bechamel suite and writes the BENCH_ingest.json
   artifact: parse and parse+index throughput (MB/s) over a synthetic
   repository document, and bytes-per-node of the structure-of-arrays
   arena against a field-for-field replica of the previous boxed-record
   arena built from the same document. *)
let ingest_report = ref None

(* [--rdf-report PATH] runs the columnar-vs-oracle triple store study
   instead of the Bechamel suite and writes the BENCH_rdf.json artifact:
   bytes/triple of both representations over an identical triple load,
   bound-pattern probe and count throughput, and cross-checks (find
   agreement on every sampled pattern, byte-identical Turtle).  Exits
   nonzero on any disagreement. *)
let rdf_report = ref None

(* [--obs-guard] runs the disabled-recorder overhead check (P15) instead
   of the Bechamel suite: fails the process if the estimated cost of the
   Off-level telemetry call sites exceeds 2% of the smoke workload. *)
let obs_guard = ref false

(* [--fused-counters] runs the multi-rule workload under the Counters
   level once per execution-time backend and prints the pattern-eval
   counter attribution (P16): how many pattern evaluations each backend
   pays per committed call, and what the fused pass's prefix sharing
   saves. *)
let fused_counters = ref false

let () =
  let usage unknown =
    Printf.eprintf
      "usage: %s [--quick] [--json PATH] [--only SUBSTR] [--jobs N] \
       [--parallel-report PATH] [--serve-report PATH] [--ingest-report PATH] \
       [--rdf-report PATH] [--obs-guard] [--fused-counters]  (unknown arg %s)\n"
      Sys.argv.(0) unknown;
    exit 2
  in
  let rec scan = function
    | "--quick" :: rest ->
      quick := true;
      scan rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      scan rest
    | "--only" :: sub :: rest ->
      only := Some sub;
      scan rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n > 1 -> par_jobs := [ 1; n ]
       | Some 1 -> par_jobs := [ 1 ]
       | Some _ | None -> usage n);
      scan rest
    | "--parallel-report" :: path :: rest ->
      parallel_report := Some path;
      scan rest
    | "--serve-report" :: path :: rest ->
      serve_report := Some path;
      scan rest
    | "--ingest-report" :: path :: rest ->
      ingest_report := Some path;
      scan rest
    | "--rdf-report" :: path :: rest ->
      rdf_report := Some path;
      scan rest
    | "--obs-guard" :: rest ->
      obs_guard := true;
      scan rest
    | "--fused-counters" :: rest ->
      fused_counters := true;
      scan rest
    | arg :: _ -> usage arg
    | [] -> ()
  in
  scan (List.tl (Array.to_list Sys.argv))

let name_contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

(* Full scaling series, or just the smallest point in quick mode. *)
let pick full = if !quick then [ List.hd full ] else full

let rulebook services =
  List.filter_map
    (fun svc ->
      Catalog.find (Service.name svc)
      |> Option.map (fun e ->
             (Service.name svc, List.map Rule_parser.parse e.Catalog.rules)))
    services

(* A prepared workload: a finished execution plus its rulebook. *)
type prepared = {
  exec : Engine.execution;
  rb : Strategy.rulebook;
  services : Service.t list;
  units : int;
  seed : int;
}

let prepare ?(units = 3) ?(seed = 42) ?(calls = 7) () =
  let doc = Workload.make_document ~units ~seed () in
  let services = Workload.chain_pipeline calls in
  let rb = rulebook services in
  let exec = Engine.run doc services in
  { exec; rb; services; units; seed }

(* ---------- P14: parallel speedup report (BENCH_parallel.json) ----------

   Wall-clock, not Bechamel: a parallel run burns CPU time on every
   domain, so per-run CPU estimates would hide the speedup entirely.
   Each (series, jobs) point is the best of [reps] runs; speedup is
   measured against the jobs=1 point of the same series.  This mode runs
   *instead of* the Bechamel suite and exits. *)

let run_parallel_report path =
  let units, calls, reps = if !quick then (4, 4, 1) else (24, 16, 3) in
  let p = prepare ~units ~calls () in
  let wall f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let series =
    [ ( "par/rewrite-large",
        fun jobs ->
          ignore (Engine.provenance ~strategy:`Rewrite ~jobs p.exec p.rb) );
      ( "par/replay-large",
        fun jobs ->
          ignore (Engine.provenance ~strategy:`Replay ~jobs p.exec p.rb) ) ]
  in
  let rows =
    List.concat_map
      (fun (name, f) ->
        let base = wall (fun () -> f 1) in
        List.map
          (fun jobs ->
            let w = if jobs = 1 then base else wall (fun () -> f jobs) in
            (name, jobs, w, base /. w))
          !par_jobs)
      series
  in
  let oc = open_out path in
  output_string oc "[\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (name, jobs, w, s) ->
      Printf.fprintf oc
        "  {\"series\": %S, \"jobs\": %d, \"wall_s\": %.6f, \
         \"speedup_vs_jobs1\": %.3f}%s\n"
        name jobs w s
        (if i = last then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "Parallel speedup (units=%d, calls=%d, best of %d):\n" units
    calls reps;
  List.iter
    (fun (name, jobs, w, s) ->
      Printf.printf "  %-20s jobs=%d  %8.2f ms  x%.2f\n" name jobs (w *. 1000.)
        s)
    rows;
  Printf.printf "Wrote %d datapoints to %s\n" (List.length rows) path

(* ---------- P17: serving daemon driver (--serve-report) ----------

   Wall-clock, end to end: the daemon is booted in-process on an
   ephemeral loopback port and [sessions] concurrent clients each open a
   session, commit a pipeline call by call (interleaving why/impact
   queries after every commit), and close with a Turtle export.  The
   export must be byte-identical to an equivalent offline
   [Engine.run_with_strategy] run of the same workload — the serving path
   is an alternative driver of the same machinery, not an approximation
   of it.  Clients cycle through every registered backend. *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

let run_serve_report path =
  let module Srv = Weblab_server.Server in
  let module P = Weblab_server.Protocol in
  let module J = Weblab_server.Json in
  let sessions = 32 in
  let units, calls = if !quick then (2, 4) else (3, 7) in
  let seed = 42 in
  let services = Workload.chain_pipeline calls in
  let service_names = List.map Service.name services in
  let rb = rulebook services in
  let backends = Strategy.all in
  (* Offline references, one per backend: same document, same pipeline,
     straight through the engine. *)
  let reference =
    List.map
      (fun kind ->
        let doc = Workload.make_document ~units ~seed () in
        let exec, g = Engine.run_with_strategy ~jobs:1 kind doc services rb in
        (kind, Engine.to_turtle ~trace:exec.Engine.trace g))
      backends
  in
  let ctx = P.make_ctx ~max_sessions:(sessions * 2) () in
  let srv = Srv.start ~port:0 ctx in
  let port = Srv.port srv in
  let errors = Atomic.make 0 in
  let mismatches = Atomic.make 0 in
  let query_lats = Array.make sessions [] in
  let commit_lats = Array.make sessions [] in
  let client i () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let rpc obj =
      output_string oc (J.to_string obj);
      output_char oc '\n';
      flush oc;
      match J.parse_opt (input_line ic) with
      | Ok v -> v
      | Error e -> failwith ("unparsable response: " ^ e)
    in
    let expect_ok obj =
      let v = rpc obj in
      (if J.bool_member "ok" v <> Some true then begin
         Atomic.incr errors;
         Printf.eprintf "serve bench: request failed: %s\n%!" (J.to_string v)
       end);
      v
    in
    let kind = List.nth backends (i mod List.length backends) in
    let sid = Printf.sprintf "bench-%d" i in
    ignore
      (expect_ok
         (J.Obj
            [ ("verb", J.Str "open"); ("session", J.Str sid);
              ("backend", J.Str (Strategy.kind_to_string kind));
              ("units", J.Int units); ("seed", J.Int seed) ]));
    List.iter
      (fun svc ->
        let t0 = Unix.gettimeofday () in
        ignore
          (expect_ok
             (J.Obj
                [ ("verb", J.Str "commit"); ("session", J.Str sid);
                  ("service", J.Str svc) ]));
        commit_lats.(i) <- (Unix.gettimeofday () -. t0) :: commit_lats.(i);
        List.iter
          (fun qkind ->
            let t0 = Unix.gettimeofday () in
            ignore
              (expect_ok
                 (J.Obj
                    [ ("verb", J.Str "query"); ("session", J.Str sid);
                      ("kind", J.Str qkind); ("uri", J.Str "mu1") ]));
            query_lats.(i) <- (Unix.gettimeofday () -. t0) :: query_lats.(i))
          [ "why"; "impact" ])
      service_names;
    let resp =
      expect_ok
        (J.Obj
           [ ("verb", J.Str "close"); ("session", J.Str sid);
             ("turtle", J.Bool true) ])
    in
    (match J.str_member "turtle" resp with
    | Some turtle ->
      if not (String.equal turtle (List.assoc kind reference)) then begin
        Atomic.incr mismatches;
        Printf.eprintf "serve bench: turtle mismatch for %s (backend %s)\n%!"
          sid (Strategy.kind_to_string kind)
      end
    | None -> Atomic.incr errors);
    flush oc;
    Unix.close fd
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init sessions (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  Srv.stop srv;
  let sort_ms lats =
    let a =
      Array.of_list (List.concat_map (fun l -> List.map (fun s -> s *. 1000.) l)
                       (Array.to_list lats))
    in
    Array.sort compare a;
    a
  in
  let q = sort_ms query_lats in
  let c = sort_ms commit_lats in
  let sessions_per_sec = float_of_int sessions /. wall in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"series\": \"serve/sessions\", \"sessions\": %d, \
     \"calls_per_session\": %d, \"units\": %d, \"backends\": [%s],\n\
    \ \"wall_s\": %.6f, \"sessions_per_sec\": %.3f,\n\
    \ \"commits\": %d, \"commit_p50_ms\": %.3f, \"commit_p99_ms\": %.3f,\n\
    \ \"queries\": %d, \"query_p50_ms\": %.3f, \"query_p99_ms\": %.3f,\n\
    \ \"errors\": %d, \"turtle_mismatches\": %d}\n"
    sessions calls units
    (String.concat ", "
       (List.map (fun k -> Printf.sprintf "%S" (Strategy.kind_to_string k))
          backends))
    wall sessions_per_sec (Array.length c) (percentile c 0.50)
    (percentile c 0.99) (Array.length q) (percentile q 0.50) (percentile q 0.99)
    (Atomic.get errors) (Atomic.get mismatches);
  close_out oc;
  Printf.printf
    "serve: %d sessions (%d commits, %d queries) in %.2f s = %.1f sessions/s\n\
    \  commit p50 %.2f ms  p99 %.2f ms;  query p50 %.2f ms  p99 %.2f ms\n\
     Wrote %s\n"
    sessions (Array.length c) (Array.length q) wall sessions_per_sec
    (percentile c 0.50) (percentile c 0.99) (percentile q 0.50)
    (percentile q 0.99) path;
  if Atomic.get errors > 0 || Atomic.get mismatches > 0 then begin
    Printf.eprintf "serve bench FAILED: %d errors, %d turtle mismatches\n"
      (Atomic.get errors) (Atomic.get mismatches);
    exit 1
  end

(* ---------- P18: streaming ingest study (--ingest-report) ----------

   Wall-clock throughput of the one-pass pipeline (bytes -> events ->
   arena [-> index]) over a synthetic repository document, plus a memory
   comparison: bytes-per-node of the live structure-of-arrays arena
   against a field-for-field replica of the boxed-record arena this
   refactor replaced (one cell record, a 16-slot children Vec and its
   own copies of every string per node — what the old parser
   materialized).  Both sides are measured with [Obj.reachable_words]
   over the same document, so the ratio is an apples-to-apples heap
   census, not an estimate. *)

module Record_arena = struct
  type kind =
    | Element of string
    | Text of string

  type cell = {
    mutable kind : kind;
    mutable attrs : (string * string) list;
    mutable parent : int;
    children : int Vec.t;
    mutable created : int;
    mutable uri_time : int;
  }
  [@@warning "-69"]

  type t = {
    cells : cell Vec.t;
    mutable root : int;
  }
  [@@warning "-69"]

  (* Fresh copies, as the old parser produced: each start tag and each
     attribute allocated its own string, shared with nothing. *)
  let copy_string s = String.init (String.length s) (String.get s)

  let of_tree doc =
    let dummy =
      { kind = Text ""; attrs = []; parent = -1;
        children = Vec.create ~dummy:(-1); created = 0; uri_time = 0 }
    in
    let t = { cells = Vec.create ~dummy; root = -1 } in
    for n = 0 to Tree.size doc - 1 do
      let kind =
        if Tree.is_element doc n then Element (copy_string (Tree.name doc n))
        else Text (copy_string (Tree.text doc n))
      in
      let attrs =
        List.map
          (fun (k, v) -> (copy_string k, copy_string v))
          (Tree.attrs doc n)
      in
      let children = Vec.create ~dummy:(-1) in
      Tree.iter_children doc n (fun c -> Vec.push children c);
      Vec.push t.cells
        { kind; attrs; parent = Tree.parent doc n; children;
          created = Tree.created doc n; uri_time = Tree.uri_time doc n }
    done;
    if Tree.has_root doc then t.root <- Tree.root doc;
    t
end

(* A WebLab-shaped repository: repetitive element/attribute vocabulary
   (what interning exploits), unique identifiers and per-unit text (what
   it cannot). *)
let synth_repository_xml items =
  let buf = Buffer.create (items * 160) in
  Buffer.add_string buf "<Repository>";
  for i = 1 to items do
    Printf.bprintf buf
      "<TextMediaUnit id=\"mu%d\" s=\"Crawler\" t=\"%d\">\
       <Content lang=\"fr\">unit %d body &amp; annotations</Content>\
       <Annotation src=\"Normaliser\" t=\"%d\"><Language>french</Language>\
       </Annotation></TextMediaUnit>"
      i (1 + (i mod 9)) i (2 + (i mod 9))
  done;
  Buffer.add_string buf "</Repository>";
  Buffer.contents buf

let best_of_runs k f =
  let best = ref infinity and result = ref None in
  for _ = 1 to k do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (!best, Option.get !result)

let reachable_bytes v = Obj.reachable_words (Obj.repr v) * (Sys.word_size / 8)

let run_ingest_report path =
  let items = if !quick then 5_000 else 50_000 in
  let xml = synth_repository_xml items in
  let mb = float_of_int (String.length xml) /. (1024. *. 1024.) in
  let runs = if !quick then 3 else 5 in
  let t_parse, doc = best_of_runs runs (fun () -> fst (Ingest.of_string xml)) in
  let t_both, (doc_i, idx) =
    best_of_runs runs (fun () ->
        match Ingest.of_string ~index:true xml with
        | d, Some i -> (d, i)
        | _, None -> assert false)
  in
  (* The classic two-pass shape, for reference: parse, then a separate
     full index build over the finished tree. *)
  let t_two_pass, _ =
    best_of_runs runs (fun () -> Index.build (Xml_parser.parse xml))
  in
  let errors = ref 0 in
  if not (Index.valid_for idx doc_i) then incr errors;
  (* Chunked feed must agree with the whole-string parse byte for byte. *)
  let chunked =
    let t = Ingest.create () in
    let len = String.length xml in
    let chunk = 64 * 1024 in
    let pos = ref 0 in
    while !pos < len do
      let k = min chunk (len - !pos) in
      Ingest.feed_string t (String.sub xml !pos k);
      pos := !pos + k
    done;
    fst (Ingest.finish t)
  in
  if not (String.equal (Printer.to_string chunked) (Printer.to_string doc))
  then incr errors;
  let nodes = Tree.size doc in
  Gc.compact ();
  let soa_per_node = float_of_int (reachable_bytes doc) /. float_of_int nodes in
  let record = Record_arena.of_tree doc in
  Gc.compact ();
  let record_per_node =
    float_of_int (reachable_bytes record) /. float_of_int nodes
  in
  let ratio = record_per_node /. soa_per_node in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"series\": \"ingest/streaming\", \"bytes\": %d, \"nodes\": %d,\n\
    \ \"parse_mb_s\": %.2f, \"parse_index_mb_s\": %.2f, \
     \"two_pass_mb_s\": %.2f,\n\
    \ \"bytes_per_node_soa\": %.1f, \"bytes_per_node_record\": %.1f, \
     \"bytes_per_node_ratio\": %.3f,\n\
    \ \"errors\": %d}\n"
    (String.length xml) nodes (mb /. t_parse) (mb /. t_both)
    (mb /. t_two_pass) soa_per_node record_per_node ratio !errors;
  close_out oc;
  Printf.printf
    "ingest: %.1f MB, %d nodes\n\
    \  parse %.1f MB/s; parse+index %.1f MB/s; two-pass parse+build %.1f \
     MB/s\n\
    \  bytes/node: SoA %.1f, record arena %.1f  (ratio %.2fx)\n\
     Wrote %s\n"
    mb nodes (mb /. t_parse) (mb /. t_both) (mb /. t_two_pass) soa_per_node
    record_per_node ratio path;
  if !errors > 0 then begin
    Printf.eprintf "ingest bench FAILED: %d errors\n" !errors;
    exit 1
  end

(* ---------- P19: columnar triple store report (BENCH_rdf.json) ----------

   The same synthetic triple load (PROV-shaped term reuse: few
   predicates, zipf-ish subject sharing, mixed IRI/literal objects) goes
   into the columnar store and the boxed oracle; the artifact reports
   bytes/triple of each and the throughput of a fixed bound-pattern
   probe set — (s,p,?), (?,p,o), (s,?,?) and fully-bound (s,p,o), each
   as [count] then [find], which is exactly what the BGP planner issues
   (selectivity estimate, then scan) and what ingest dedup probes.
   Predicate-only (?,p,?) scans are timed separately and reported
   ungated: they enumerate an eighth of the store per probe, and the
   oracle's per-term posting lists of shared tuples are the optimal
   layout for that — the columnar store pays one decode per result and
   lands within ~2x, in exchange for the bytes/triple ratio and every
   bound-probe win.  Every sampled pattern's [find]/[count] and the full
   Turtle/N-Triples exports are cross-checked between the stores; any
   disagreement fails the run. *)

let run_rdf_report path =
  let module R = Weblab_rdf in
  let n = if !quick then 10_000 else 60_000 in
  let runs = if !quick then 3 else 5 in
  let rng = Random.State.make [| 0x5eed; 97 |] in
  let n_subj = max 1 (n / 8) in
  let preds =
    Array.init 8 (fun i ->
        R.Term.iri (Printf.sprintf "http://weblab.example/prov#p%d" i))
  in
  let subj i = R.Term.iri (Printf.sprintf "http://weblab.example/resource/%d" i) in
  let triples =
    Array.init n (fun _ ->
        let s = subj (Random.State.int rng n_subj) in
        let p = preds.(Random.State.int rng (Array.length preds)) in
        let o =
          if Random.State.bool rng then subj (Random.State.int rng n_subj)
          else R.Term.lit (Printf.sprintf "value-%d" (Random.State.int rng (max 1 (n / 4))))
        in
        (s, p, o))
  in
  let fill_columnar () =
    let st = R.Triple_store.create () in
    Array.iter (fun tr -> R.Triple_store.add st tr) triples;
    st
  in
  let fill_oracle () =
    let st = R.Oracle_store.create () in
    Array.iter (fun tr -> R.Oracle_store.add st tr) triples;
    st
  in
  let t_add_c, cst = best_of_runs runs fill_columnar in
  let t_add_o, ost = best_of_runs runs fill_oracle in
  let live = R.Triple_store.size cst in
  R.Triple_store.compact cst;
  Gc.compact ();
  let bpt_c = float_of_int (reachable_bytes cst) /. float_of_int live in
  let bpt_o = float_of_int (reachable_bytes ost) /. float_of_int live in
  (* A fixed probe set sampled from the loaded triples: each pattern
     runs [count] then [find] (summing counts and result sizes so
     nothing is optimized away), repeated [reps] times per round. *)
  let n_pats = if !quick then 512 else 2048 in
  let reps = 4 in
  let pats =
    Array.init n_pats (fun i ->
        let s, p, o = triples.(Random.State.int rng n) in
        match i mod 4 with
        | 0 -> (Some s, Some p, None)
        | 1 -> (None, Some p, Some o)
        | 2 -> (Some s, None, None)
        | _ -> (Some s, Some p, Some o))
    |> Array.to_list
  in
  let scans =
    List.init (Array.length preds) (fun i -> (None, Some preds.(i), None))
  in
  let probe count find pats () =
    let acc = ref 0 in
    for _ = 1 to reps do
      List.iter
        (fun pat -> acc := !acc + count pat + List.length (find pat))
        pats
    done;
    !acc
  in
  let probe_c = probe (R.Triple_store.count cst) (R.Triple_store.find cst) in
  let probe_o = probe (R.Oracle_store.count ost) (R.Oracle_store.find ost) in
  let t_probe_c, hits_c = best_of_runs runs (probe_c pats) in
  let t_probe_o, hits_o = best_of_runs runs (probe_o pats) in
  let t_scan_c, scan_c = best_of_runs runs (probe_c scans) in
  let t_scan_o, scan_o = best_of_runs runs (probe_o scans) in
  let errors = ref 0 in
  if hits_c <> hits_o || scan_c <> scan_o then incr errors;
  (* Cross-checks: every sampled pattern agrees triple-for-triple, and
     the serialized exports are byte-identical. *)
  List.iter
    (fun pat ->
      if R.Triple_store.find cst pat <> R.Oracle_store.find ost pat then
        incr errors;
      if R.Triple_store.count cst pat <> R.Oracle_store.count ost pat then
        incr errors)
    (pats @ scans);
  if
    not
      (String.equal
         (R.Turtle.to_turtle cst)
         (R.Turtle.Oracle.to_turtle ost))
  then incr errors;
  if
    not
      (String.equal (R.Turtle.to_ntriples cst) (R.Turtle.Oracle.to_ntriples ost))
  then incr errors;
  let stats = R.Triple_store.stats cst in
  let bpt_ratio = bpt_o /. bpt_c in
  let probe_speedup = t_probe_o /. t_probe_c in
  let scan_speedup = t_scan_o /. t_scan_c in
  let add_speedup = t_add_o /. t_add_c in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"series\": \"rdf/columnar\", \"triples\": %d, \"terms\": %d, \
     \"merges\": %d,\n\
    \ \"bytes_per_triple_columnar\": %.1f, \"bytes_per_triple_oracle\": \
     %.1f, \"bytes_per_triple_ratio\": %.3f,\n\
    \ \"probes\": %d, \"probe_s_columnar\": %.6f, \"probe_s_oracle\": %.6f, \
     \"probe_speedup\": %.3f,\n\
    \ \"scan_s_columnar\": %.6f, \"scan_s_oracle\": %.6f, \"scan_speedup\": \
     %.3f,\n\
    \ \"add_s_columnar\": %.6f, \"add_s_oracle\": %.6f, \"add_speedup\": \
     %.3f,\n\
    \ \"errors\": %d}\n"
    live stats.R.Triple_store.st_terms stats.R.Triple_store.st_merges bpt_c
    bpt_o bpt_ratio (n_pats * reps) t_probe_c t_probe_o probe_speedup t_scan_c
    t_scan_o scan_speedup t_add_c t_add_o add_speedup !errors;
  close_out oc;
  Printf.printf
    "rdf: %d triples (%d distinct terms, %d run merges)\n\
    \  bytes/triple: columnar %.1f, oracle %.1f  (ratio %.2fx)\n\
    \  %d bound probes: columnar %.2f ms, oracle %.2f ms  (speedup %.2fx)\n\
    \  %d predicate scans: columnar %.2f ms, oracle %.2f ms  (speedup \
     %.2fx, ungated)\n\
    \  load: columnar %.2f ms, oracle %.2f ms  (speedup %.2fx)\n\
     Wrote %s\n"
    live stats.R.Triple_store.st_terms stats.R.Triple_store.st_merges bpt_c
    bpt_o bpt_ratio (n_pats * reps) (t_probe_c *. 1000.) (t_probe_o *. 1000.)
    probe_speedup
    (List.length scans * reps)
    (t_scan_c *. 1000.) (t_scan_o *. 1000.) scan_speedup (t_add_c *. 1000.)
    (t_add_o *. 1000.) add_speedup path;
  if !errors > 0 then begin
    Printf.eprintf "rdf bench FAILED: %d cross-check errors\n" !errors;
    exit 1
  end

(* ---------- P15: recorder overhead guard (--obs-guard) ----------

   A direct disabled-vs-removed A/B is impossible (the call sites are
   compiled in), and a wall-clock A/B against the Counters level drowns
   in CI noise at the 2% scale.  Instead, bound the cost from
   measurables: (a) the per-call cost of each hot-path primitive —
   counter incr, gauge set, histogram observe — from tight micro-loops;
   (b) the number of gated calls the smoke workload makes,
   over-approximated by the counter totals at the Counters level (an
   [add n] counts n times but is one call — the estimate only errs
   upward); (c) the workload's disabled-path wall time.  Three gates,
   all at 2%: the Off bound charges every gated op at the worst
   primitive (the "one atomic load" contract must hold whichever
   primitive sits at a call site); the Counters bound charges the
   workload's ops at the counter-incr cost, since counters are the only
   primitive on the inference hot path — gauges and histograms live at
   serving and merge boundaries; and a serving-path bound charges the
   per-request mix the protocol dispatcher actually pays (one verb
   counter, one histogram observe, two gauge samples) against a 50 us
   request floor — far below the cheapest verb we serve, so real
   requests sit further under the limit. *)
let run_obs_guard () =
  let module T = Weblab_obs.Telemetry in
  let module M = Weblab_obs.Metrics in
  let probe = T.counter "guard.probe" in
  let g = M.gauge "guard.gauge" in
  let h = M.hist "guard.hist" in
  let n = 20_000_000 in
  let measure f =
    let t0 = Unix.gettimeofday () in
    for i = 1 to n do
      f i
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  let worst () =
    let c = measure (fun _ -> T.incr probe) in
    let s = measure (fun i -> M.set g i) in
    (* spread observations over buckets so the CAS-max path stays real *)
    let o = measure (fun i -> M.observe_us h (float_of_int (i land 0xffff))) in
    (max c (max s o), c, s, o)
  in
  T.set_level T.Off;
  let per_off, c0, s0, o0 = worst () in
  T.set_level T.Counters;
  T.reset ();
  let _per_on, c1, s1, o1 = worst () in
  Printf.printf
    "obs guard per-op ns: off incr/set/observe %.2f/%.2f/%.2f, counters \
     %.2f/%.2f/%.2f\n"
    (c0 *. 1e9) (s0 *. 1e9) (o0 *. 1e9) (c1 *. 1e9) (s1 *. 1e9) (o1 *. 1e9);
  let p = prepare ~units:8 ~calls:7 () in
  let infer () = ignore (Engine.provenance ~strategy:`Rewrite p.exec p.rb) in
  T.set_level T.Counters;
  T.reset ();
  infer ();
  let ops = List.fold_left (fun acc (_, v) -> acc + v) 0 (T.counters ()) in
  T.set_level T.Off;
  let wall = ref infinity in
  for _ = 1 to 5 do
    let t0 = Unix.gettimeofday () in
    infer ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !wall then wall := dt
  done;
  let failed = ref false in
  let gate label per_op =
    let overhead = float_of_int ops *. per_op /. !wall in
    Printf.printf
      "obs guard (%s): %d gated ops x %.2f ns = %.1f us, against %.2f ms \
       wall => %.4f%% (limit 2%%)\n"
      label ops (per_op *. 1e9)
      (float_of_int ops *. per_op *. 1e6)
      (!wall *. 1000.) (overhead *. 100.);
    if overhead > 0.02 then begin
      Printf.eprintf "obs guard FAILED: %s recorder overhead %.4f%% > 2%%\n"
        label (overhead *. 100.);
      failed := true
    end
  in
  gate "disabled" per_off;
  gate "counters" c1;
  (* Serving hot path: the dispatcher pays one verb-counter incr, one
     histogram observe, and the session layer two gauge samples per
     request.  Bound that mix against a 50 us request floor — the
     cheapest verb (stats) serves in hundreds of microseconds, so real
     requests sit well under this. *)
  let req_cost = c1 +. o1 +. (2. *. s1) in
  let req_floor = 50e-6 in
  let req_overhead = req_cost /. req_floor in
  Printf.printf
    "obs guard (serving): incr + observe + 2 gauge sets = %.1f ns per \
     request, against a %.0f us request floor => %.4f%% (limit 2%%)\n"
    (req_cost *. 1e9) (req_floor *. 1e6) (req_overhead *. 100.);
  if req_overhead > 0.02 then begin
    Printf.eprintf
      "obs guard FAILED: serving per-request overhead %.4f%% > 2%%\n"
      (req_overhead *. 100.);
    failed := true
  end;
  if !failed then exit 1

(* ---------- P16: pattern-eval counter attribution (--fused-counters) ----------

   Times say the fused backend wins on multi-rule workloads; the
   counters say WHY.  Run the k-copy workload once per execution-time
   backend at the Counters level and report the per-rule amortized
   pattern cost: the interpretive backends pay [eval.patterns]
   rule-at-a-time evaluations (linear in k), the fused backend pays
   [fused.pass.steps] trie-node evaluations per shared pass — constant
   in k, because the k copies CSE onto one expression set. *)
let run_fused_counters () =
  let module T = Weblab_obs.Telemetry in
  let services = Workload.chain_pipeline 7 in
  let base_rb = rulebook services in
  let scale k =
    List.map
      (fun (svc, rules) ->
        ( svc,
          List.concat_map
            (fun r ->
              List.init k (fun i ->
                  Rule.make
                    ~name:(Printf.sprintf "%s#%d" (Rule.name r) i)
                    ~source:(Rule.source r) ~target:(Rule.target r) ()))
            rules ))
      base_rb
  in
  let get name = Option.value ~default:0 (List.assoc_opt name (T.counters ())) in
  Printf.printf
    "%-12s %4s %14s %12s %12s %12s %12s\n"
    "backend" "k" "rules" "eval.patterns" "pass.steps" "steps.shared"
    "steps.scan";
  List.iter
    (fun k ->
      let rb = scale k in
      let nrules =
        List.fold_left (fun acc (_, rs) -> acc + List.length rs) 0 rb
      in
      List.iter
        (fun kind ->
          let doc = Workload.make_document ~units:3 ~seed:42 () in
          T.set_level T.Counters;
          T.reset ();
          ignore (Engine.run_with_strategy kind doc services rb);
          let row =
            ( get "eval.patterns" + get "eval.patterns.fused",
              get "fused.pass.steps",
              get "fused.pass.steps.shared",
              get "eval.steps.scan" )
          in
          T.set_level T.Off;
          let p, ps, sh, sc = row in
          Printf.printf "%-12s %4d %14d %12d %12d %12d %12d\n"
            (Strategy.kind_to_string kind)
            k nrules p ps sh sc)
        [ `Online; `Incremental; `Fused ])
    [ 1; 4; 16 ]

let () =
  if !fused_counters then begin
    run_fused_counters ();
    exit 0
  end

let () =
  if !obs_guard then begin
    run_obs_guard ();
    exit 0
  end

let () =
  match !parallel_report with
  | Some path ->
    run_parallel_report path;
    exit 0
  | None -> ()

let () =
  match !serve_report with
  | Some path ->
    run_serve_report path;
    exit 0
  | None -> ()

let () =
  match !ingest_report with
  | Some path ->
    run_ingest_report path;
    exit 0
  | None -> ()

let () =
  match !rdf_report with
  | Some path ->
    run_rdf_report path;
    exit 0
  | None -> ()

(* ---------- F/E: paper artifact regeneration ---------- *)

let test_paper_figures =
  Test.make ~name:"paper/figures(F1-E9)"
    (Staged.stage (fun () ->
         let e = Weblab_scenario.Paper.run () in
         let artifacts = Weblab_scenario.Figures.all e in
         assert (List.length artifacts = 9)))

(* ---------- P1: strategy comparison over workflow length ---------- *)

let strategy_tests =
  List.concat_map
    (fun calls ->
      let p = prepare ~calls () in
      let fresh_online () =
        (* Online re-executes: it cannot be separated from the run. *)
        let doc = Workload.make_document ~units:p.units ~seed:p.seed () in
        ignore (Engine.run_online doc p.services p.rb)
      in
      [ Test.make
          ~name:(Printf.sprintf "strategy/replay/calls=%02d" calls)
          (Staged.stage (fun () ->
               ignore (Engine.provenance ~strategy:`Replay p.exec p.rb)));
        Test.make
          ~name:(Printf.sprintf "strategy/rewrite/calls=%02d" calls)
          (Staged.stage (fun () ->
               ignore (Engine.provenance ~strategy:`Rewrite p.exec p.rb)));
        Test.make
          ~name:(Printf.sprintf "strategy/online+exec/calls=%02d" calls)
          (Staged.stage fresh_online);
        Test.make
          ~name:(Printf.sprintf "strategy/exec-only/calls=%02d" calls)
          (Staged.stage (fun () ->
               let doc = Workload.make_document ~units:p.units ~seed:p.seed () in
               ignore (Engine.run doc p.services)))
      ])
    (pick [ 4; 8; 16; 32; 64 ])

(* ---------- P2: document-size scaling (fixed pipeline) ---------- *)

let doc_scaling_tests =
  List.map
    (fun units ->
      let p = prepare ~units ~calls:7 () in
      Test.make
        ~name:(Printf.sprintf "scale_doc/rewrite/units=%03d" units)
        (Staged.stage (fun () ->
             ignore (Engine.provenance ~strategy:`Rewrite p.exec p.rb))))
    (pick [ 2; 8; 32 ])

(* ---------- P3: rule-set scaling ---------- *)

let rule_scaling_tests =
  let p = prepare ~calls:7 () in
  List.map
    (fun k ->
      (* k distinct copies of every rule. *)
      let rb =
        List.map
          (fun (svc, rules) ->
            ( svc,
              List.concat_map
                (fun r ->
                  List.init k (fun i ->
                      Rule.make
                        ~name:(Printf.sprintf "%s#%d" (Rule.name r) i)
                        ~source:(Rule.source r) ~target:(Rule.target r) ()))
                rules ))
          p.rb
      in
      Test.make
        ~name:(Printf.sprintf "scale_rules/rewrite/x%02d" k)
        (Staged.stage (fun () ->
             ignore (Engine.provenance ~strategy:`Rewrite p.exec rb))))
    (pick [ 1; 4; 16 ])

(* ---------- P4: the Example 9 optimizer at scale ---------- *)

let xquery_tests =
  (* A document with many TextMediaUnits so the id join matters. *)
  let p = prepare ~units:24 ~calls:2 () in
  let doc = p.exec.Engine.doc in
  let source = Weblab_xpath.Parser.pattern "//TextMediaUnit[$x := @id]/TextContent" in
  let target =
    Weblab_xpath.Parser.pattern "//TextMediaUnit[$x := @id]/Annotation[Language]"
  in
  let naive =
    Weblab_xquery.Xq_compile.compile_rule_query source target
      ~service:"LanguageExtractor" ~time:2
  in
  let merged = Weblab_xquery.Xq_optimize.merge_key_joins naive in
  let pushed = Weblab_xquery.Xq_optimize.push_filters naive in
  let full = Weblab_xquery.Xq_optimize.optimize naive in
  [ Test.make ~name:"xquery_opt/naive"
      (Staged.stage (fun () -> ignore (Weblab_xquery.Xq_eval.run doc naive)));
    Test.make ~name:"xquery_opt/pushdown"
      (Staged.stage (fun () -> ignore (Weblab_xquery.Xq_eval.run doc pushed)));
    Test.make ~name:"xquery_opt/key_merge"
      (Staged.stage (fun () -> ignore (Weblab_xquery.Xq_eval.run doc merged)));
    Test.make ~name:"xquery_opt/merge+pushdown"
      (Staged.stage (fun () -> ignore (Weblab_xquery.Xq_eval.run doc full)))
  ]

(* ---------- P5: RDF substrate ---------- *)

let rdf_tests =
  let p = prepare ~units:8 ~calls:7 () in
  let g = Engine.provenance ~strategy:`Rewrite p.exec p.rb in
  let store = Prov_export.to_store g in
  let all = Weblab_rdf.Triple_store.triples store in
  let oracle = Weblab_rdf.Oracle_store.create () in
  List.iter (fun tr -> Weblab_rdf.Oracle_store.add oracle tr) all;
  (* Bound-pattern probe set: one (s,p,?) per distinct subject. *)
  let probes =
    List.sort_uniq compare (List.map (fun (s, p, _) -> (Some s, Some p, None)) all)
  in
  [ Test.make ~name:"rdf/export_store"
      (Staged.stage (fun () -> ignore (Prov_export.to_store g)));
    Test.make ~name:"rdf/turtle"
      (Staged.stage (fun () -> ignore (Weblab_rdf.Turtle.to_turtle store)));
    Test.make ~name:"rdf/load_columnar"
      (Staged.stage (fun () ->
           let st = Weblab_rdf.Triple_store.create () in
           List.iter (fun tr -> Weblab_rdf.Triple_store.add st tr) all));
    Test.make ~name:"rdf/load_oracle"
      (Staged.stage (fun () ->
           let st = Weblab_rdf.Oracle_store.create () in
           List.iter (fun tr -> Weblab_rdf.Oracle_store.add st tr) all));
    Test.make ~name:"rdf/probe_columnar"
      (Staged.stage (fun () ->
           List.iter
             (fun pat -> ignore (Weblab_rdf.Triple_store.find store pat))
             probes));
    Test.make ~name:"rdf/probe_oracle"
      (Staged.stage (fun () ->
           List.iter
             (fun pat -> ignore (Weblab_rdf.Oracle_store.find oracle pat))
             probes));
    Test.make ~name:"rdf/sparql_bgp"
      (Staged.stage (fun () ->
           ignore
             (Weblab_rdf.Sparql.run store
                "SELECT ?b ?a WHERE { ?b prov:wasDerivedFrom ?a . \
                 ?b prov:wasGeneratedBy ?act }")))
  ]

(* ---------- P6: XML substrate micro-benchmarks ---------- *)

let xml_tests =
  let p = prepare ~units:16 ~calls:7 () in
  let doc = p.exec.Engine.doc in
  let xml = Printer.to_string doc in
  let old_doc = Xml_parser.parse xml in
  let bigger = Xml_parser.parse xml in
  ignore
    (Tree.new_element bigger ~parent:(Tree.root bigger) "Extra"
       ~attrs:[ ("id", "zz") ]);
  [ Test.make ~name:"xml/parse"
      (Staged.stage (fun () -> ignore (Xml_parser.parse xml)));
    Test.make ~name:"xml/serialize"
      (Staged.stage (fun () -> ignore (Printer.to_string doc)));
    Test.make ~name:"xml/diff"
      (Staged.stage (fun () -> ignore (Diff.diff ~old_doc ~new_doc:bigger)));
    Test.make ~name:"xml/xpath_embeddings"
      (Staged.stage (fun () ->
           ignore
             (Weblab_xpath.Eval.eval doc
                (Weblab_xpath.Parser.pattern
                   "//TextMediaUnit[$x := @id]/Annotation[Language]"))))
  ]

(* ---------- P18: streaming ingest micro-benchmarks ---------- *)

let ingest_tests =
  let xml = synth_repository_xml (if !quick then 500 else 5_000) in
  [ Test.make ~name:"ingest/parse"
      (Staged.stage (fun () -> ignore (Ingest.of_string xml)));
    Test.make ~name:"ingest/parse+index"
      (Staged.stage (fun () -> ignore (Ingest.of_string ~index:true xml)));
    Test.make ~name:"ingest/two-pass"
      (Staged.stage (fun () -> ignore (Index.build (Xml_parser.parse xml))));
    Test.make ~name:"ingest/chunked-4k"
      (Staged.stage (fun () ->
           let t = Ingest.create () in
           let len = String.length xml in
           let pos = ref 0 in
           while !pos < len do
             let k = min 4096 (len - !pos) in
             Ingest.feed_string t (String.sub xml !pos k);
             pos := !pos + k
           done;
           ignore (Ingest.finish t)))
  ]

(* ---------- P7: reachability queries — BFS vs materialized closure ---------- *)

let reachability_tests =
  let p = prepare ~units:16 ~calls:7 () in
  let g = Engine.provenance ~strategy:`Rewrite p.exec p.rb in
  let g = Inheritance.close p.exec.Engine.doc g in
  let uris = List.map fst (Prov_graph.labeled_resources g) in
  let idx = Reachability.build g in
  [ Test.make ~name:"reach/index_build"
      (Staged.stage (fun () -> ignore (Reachability.build g)));
    Test.make ~name:"reach/bfs_all_pairs"
      (Staged.stage (fun () ->
           List.iter (fun u -> ignore (Query.depends_on_transitive g u)) uris));
    Test.make ~name:"reach/index_all_pairs"
      (Staged.stage (fun () ->
           List.iter (fun u -> ignore (Reachability.ancestors idx u)) uris))
  ]

(* ---------- P8: view projection and channel-aware inference ---------- *)

let extension_tests =
  let p = prepare ~units:8 ~calls:7 () in
  let g = Engine.provenance ~strategy:`Rewrite p.exec p.rb in
  let view =
    Views.by_services
      [ ("Preparation", [ "Normaliser"; "LanguageExtractor"; "Translator" ]);
        ("Analytics",
         [ "Tokenizer"; "EntityExtractor"; "Summarizer"; "SentimentAnalyzer" ]) ]
  in
  let par_wf =
    Weblab_workflow.Parallel.(
      Seq
        [ Par
            [ Call Weblab_services.Media.ocr_service;
              Call Weblab_services.Media.asr_service;
              Call Weblab_services.Normaliser.service ];
          Call Weblab_services.Language_extractor.service ])
  in
  let par_rb =
    rulebook
      [ Weblab_services.Media.ocr_service; Weblab_services.Media.asr_service;
        Weblab_services.Normaliser.service;
        Weblab_services.Language_extractor.service ]
  in
  [ Test.make ~name:"ext/view_projection"
      (Staged.stage (fun () -> ignore (Views.project g view)));
    Test.make ~name:"ext/parallel_run+infer"
      (Staged.stage (fun () ->
           let doc =
             Workload.make_document ~units:2 ~images:1 ~audios:1 ~seed:5 ()
           in
           ignore (Engine.run_parallel ~strategy:`Rewrite doc par_wf par_rb)));
    Test.make ~name:"ext/prov_xml_export"
      (Staged.stage (fun () -> ignore (Prov_export.to_prov_xml g)));
    Test.make ~name:"ext/trace_xml_roundtrip"
      (Staged.stage (fun () ->
           ignore (Trace_io.of_xml (Trace_io.to_xml p.exec.Engine.trace))))
  ]

(* ---------- P9: inherited-closure / storage analytics ---------- *)

let analytics_tests =
  let p = prepare ~units:8 ~calls:7 () in
  let g_explicit = Engine.provenance ~strategy:`Rewrite p.exec p.rb in
  [ Test.make ~name:"analytics/inherit_closure"
      (Staged.stage (fun () ->
           let copy = Prov_export.of_store (Prov_export.to_store g_explicit) in
           ignore (Inheritance.close p.exec.Engine.doc copy)));
    Test.make ~name:"analytics/metrics"
      (Staged.stage (fun () -> ignore (Analytics.metrics g_explicit)));
    Test.make ~name:"analytics/replay_plan"
      (Staged.stage (fun () ->
           ignore (Replay_plan.build g_explicit ~sources:[ "mu1" ])))
  ]

(* ---------- P10: indexed vs unindexed pattern evaluation ---------- *)

let index_tests =
  List.concat_map
    (fun units ->
      let p = prepare ~units ~calls:7 () in
      let doc = p.exec.Engine.doc in
      let label_pat = Weblab_xpath.Parser.pattern "//Annotation[Language]" in
      let narrow_pat =
        Weblab_xpath.Parser.pattern
          "//TextMediaUnit[$x := @id]/Annotation[Language]"
      in
      let idx = Index.for_tree doc in
      [ Test.make
          ~name:(Printf.sprintf "index/build/units=%03d" units)
          (Staged.stage (fun () -> ignore (Index.build doc)));
        Test.make
          ~name:(Printf.sprintf "index/eval_naive/units=%03d" units)
          (Staged.stage (fun () ->
               ignore (Weblab_xpath.Eval.eval_unindexed doc label_pat)));
        Test.make
          ~name:(Printf.sprintf "index/eval_indexed/units=%03d" units)
          (Staged.stage (fun () ->
               ignore (Weblab_xpath.Eval.eval ~index:idx doc label_pat)));
        Test.make
          ~name:(Printf.sprintf "index/bind_naive/units=%03d" units)
          (Staged.stage (fun () ->
               ignore (Weblab_xpath.Eval.eval_unindexed doc narrow_pat)));
        Test.make
          ~name:(Printf.sprintf "index/bind_indexed/units=%03d" units)
          (Staged.stage (fun () ->
               ignore (Weblab_xpath.Eval.eval ~index:idx doc narrow_pat)))
      ])
    (pick [ 2; 8; 32 ])

(* ---------- P11: hash join vs nested-loop join ---------- *)

let join_tests =
  let open Weblab_relalg in
  List.concat_map
    (fun n ->
      (* Two relations sharing a key column with ~4 rows per key on each
         side, so the join output stays quadratic-in-duplicates but the
         probe is O(1) per row. *)
      let mk other =
        Table.of_rows [ "k"; other ]
          (List.init n (fun i ->
               [| Value.Str (Printf.sprintf "k%d" (i mod (max 1 (n / 4))));
                  Value.Int i |]))
      in
      let a = mk "a" and b = mk "b" in
      [ Test.make
          ~name:(Printf.sprintf "join/nested_loop/rows=%04d" n)
          (Staged.stage (fun () -> ignore (Table.nested_loop_join a b)));
        Test.make
          ~name:(Printf.sprintf "join/hash/rows=%04d" n)
          (Staged.stage (fun () -> ignore (Table.hash_join a b)))
      ])
    (pick [ 32; 128; 512 ])

(* ---------- P12: fault-tolerant orchestration over degraded runs ---------- *)

(* Executions with injected faults (skip-on-failure, one retry) and
   inference over what survived.  Stall is excluded from the bench plan:
   it measures sleeping, not orchestration.  The wrapped services carry
   per-instance attempt counters, so the exec benchmark re-wraps inside
   the staged closure to keep every iteration's fault pattern identical. *)
let fault_tests =
  let bench_faults =
    Faulty.[ Crash; Garbage_xml; Mutate_committed; Duplicate_uri ]
  in
  let policy =
    { Orchestrator.default_policy with
      retries = 1; backoff_ms = 10.; on_failure = `Skip }
  in
  let services = Workload.chain_pipeline 7 in
  let rb = rulebook services in
  List.concat_map
    (fun rate ->
      let tag = int_of_float ((rate *. 100.) +. 0.5) in
      let degraded () =
        let doc = Workload.make_document ~units:3 ~seed:42 () in
        let faulty =
          Faulty.wrap_all
            (Faulty.plan ~faults:bench_faults ~rate ~seed:42 ())
            services
        in
        Engine.run ~policy doc faulty
      in
      let p = degraded () in
      [ Test.make
          ~name:(Printf.sprintf "fault/exec/rate=%02d" tag)
          (Staged.stage (fun () -> ignore (degraded ())));
        Test.make
          ~name:(Printf.sprintf "fault/replay/rate=%02d" tag)
          (Staged.stage (fun () ->
               ignore (Engine.provenance ~strategy:`Replay p rb)));
        Test.make
          ~name:(Printf.sprintf "fault/rewrite/rate=%02d" tag)
          (Staged.stage (fun () ->
               ignore (Engine.provenance ~strategy:`Rewrite p rb)))
      ])
    (pick [ 0.0; 0.2; 0.5 ])

(* ---------- P13: delta-driven incremental inference ---------- *)

(* Execution-time inference as the document grows, against an exec-only
   baseline that isolates the inference overhead: compare (online − exec)
   with (incremental − exec) across each series.

   - pipeline-*: the real media-mining chain.  Services process every
     unit, so the per-call delta grows with the corpus too — the honest
     end-to-end comparison.
   - delta1-*: a pipeline of 12 calls that each append exactly ONE node
     joining (by key) against a corpus that scales.  The per-call delta is
     constant, so Online's overhead grows with [units] while
     Incremental's — after the first observation builds its memo — should
     stay flat. *)
let incr_pipeline_tests =
  let services = Workload.chain_pipeline 7 in
  let rb = rulebook services in
  List.concat_map
    (fun units ->
      let run kind () =
        let doc = Workload.make_document ~units ~seed:42 () in
        ignore (Engine.run_with_strategy kind doc services rb)
      in
      [ Test.make
          ~name:(Printf.sprintf "incr/pipeline-exec/units=%03d" units)
          (Staged.stage (fun () ->
               let doc = Workload.make_document ~units ~seed:42 () in
               ignore (Engine.run doc services)));
        Test.make
          ~name:(Printf.sprintf "incr/pipeline-online/units=%03d" units)
          (Staged.stage (run `Online));
        Test.make
          ~name:(Printf.sprintf "incr/pipeline-incremental/units=%03d" units)
          (Staged.stage (run `Incremental))
      ])
    (pick [ 2; 8; 32; 64 ])

let incr_fixed_delta_tests =
  (* Unique across every bench iteration — URIs only need to be unique
     within one execution, and a monotone counter guarantees that. *)
  let counter = ref 0 in
  let tagger =
    Service.inproc ~name:"DeltaTagger" ~description:"" (fun doc ->
        incr counter;
        ignore
          (Tree.new_element doc ~parent:(Tree.root doc) "DeltaNote"
             ~attrs:[ ("id", Printf.sprintf "dn%d" !counter); ("ref", "mu1") ]))
  in
  let services = List.init 12 (fun _ -> tagger) in
  let rb =
    [ ( "DeltaTagger",
        [ Rule_parser.parse "//MediaUnit[$x := @id] ==> //DeltaNote[$x := @ref]" ]
      ) ]
  in
  List.concat_map
    (fun units ->
      let run kind () =
        let doc = Workload.make_document ~units ~seed:42 () in
        ignore (Engine.run_with_strategy kind doc services rb)
      in
      [ Test.make
          ~name:(Printf.sprintf "incr/delta1-exec/units=%03d" units)
          (Staged.stage (fun () ->
               let doc = Workload.make_document ~units ~seed:42 () in
               ignore (Engine.run doc services)));
        Test.make
          ~name:(Printf.sprintf "incr/delta1-online/units=%03d" units)
          (Staged.stage (run `Online));
        Test.make
          ~name:(Printf.sprintf "incr/delta1-incremental/units=%03d" units)
          (Staged.stage (run `Incremental))
      ])
    (pick [ 2; 8; 32; 64 ])

let incr_tests = incr_pipeline_tests @ incr_fixed_delta_tests

(* ---------- P16: the fused rule-set compiler ---------- *)

(* Execution-time inference with k distinct copies of every rule
   (the scale_rules idiom).  The interpretive backends evaluate each
   rule's patterns rule-at-a-time, so their pattern cost grows linearly
   in k; the Fused backend's shared pass evaluates every distinct
   pattern step once per call — the k copies CSE onto one expression
   set — so only the join/emission work scales.  Compare the three
   execution-time backends point by point; the per-rule amortized cost
   discussion is EXPERIMENTS P16. *)
let fused_tests =
  let services = Workload.chain_pipeline 7 in
  let base_rb = rulebook services in
  List.concat_map
    (fun k ->
      let rb =
        List.map
          (fun (svc, rules) ->
            ( svc,
              List.concat_map
                (fun r ->
                  List.init k (fun i ->
                      Rule.make
                        ~name:(Printf.sprintf "%s#%d" (Rule.name r) i)
                        ~source:(Rule.source r) ~target:(Rule.target r) ()))
                rules ))
          base_rb
      in
      let run kind () =
        let doc = Workload.make_document ~units:3 ~seed:42 () in
        ignore (Engine.run_with_strategy kind doc services rb)
      in
      [ Test.make
          ~name:(Printf.sprintf "fused/online/x%02d" k)
          (Staged.stage (run `Online));
        Test.make
          ~name:(Printf.sprintf "fused/incremental/x%02d" k)
          (Staged.stage (run `Incremental));
        Test.make
          ~name:(Printf.sprintf "fused/fused/x%02d" k)
          (Staged.stage (run `Fused))
      ])
    (pick [ 1; 4; 16 ])

(* ---------- P14: multicore post-hoc inference ---------- *)

(* The Bechamel twin of the wall-clock report: the same workload, timed
   with the monotonic clock per jobs value.  Useful for tracking the
   sequential cost of the parallel code path (jobs=1 vs the pre-pool
   strategy/* series). *)
let parallel_tests =
  let p =
    if !quick then prepare ~units:4 ~calls:4 ()
    else prepare ~units:24 ~calls:16 ()
  in
  List.concat_map
    (fun jobs ->
      [ Test.make
          ~name:(Printf.sprintf "par/rewrite-large/jobs=%d" jobs)
          (Staged.stage (fun () ->
               ignore (Engine.provenance ~strategy:`Rewrite ~jobs p.exec p.rb)));
        Test.make
          ~name:(Printf.sprintf "par/replay-large/jobs=%d" jobs)
          (Staged.stage (fun () ->
               ignore (Engine.provenance ~strategy:`Replay ~jobs p.exec p.rb)))
      ])
    (if !quick then [ 1; 2 ] else !par_jobs)

(* ---------- P15: recorder overhead (disabled / counters / full) ---------- *)

(* The same inference workload under the three recorder levels.  Each
   closure sets its level on entry and restores Off on exit so the rest
   of the suite stays uninstrumented; obs/full also resets the recorder
   per run, which bounds the event buffers AND charges the run for the
   buffer management it causes. *)
let obs_tests =
  let module T = Weblab_obs.Telemetry in
  let p = prepare ~units:8 ~calls:7 () in
  let infer () = ignore (Engine.provenance ~strategy:`Rewrite p.exec p.rb) in
  let at level f () =
    T.set_level level;
    Fun.protect ~finally:(fun () -> T.set_level T.Off) f
  in
  let module M = Weblab_obs.Metrics in
  let g = M.gauge "bench.gauge" in
  let h = M.hist "bench.hist" in
  let tick = ref 0 in
  [ Test.make ~name:"obs/disabled" (Staged.stage (at T.Off infer));
    Test.make ~name:"obs/counters" (Staged.stage (at T.Counters infer));
    Test.make ~name:"obs/full"
      (Staged.stage
         (at T.Full (fun () ->
              T.reset ();
              infer ())));
    (* Metric-primitive micro-costs at the Counters level: one gauge
       store, one histogram record (bucketed add + CAS max), one full
       registry snapshot over whatever families the run has touched. *)
    Test.make ~name:"obs/gauge_set"
      (Staged.stage
         (at T.Counters (fun () ->
              incr tick;
              M.set g !tick)));
    Test.make ~name:"obs/hist_record"
      (Staged.stage
         (at T.Counters (fun () ->
              incr tick;
              M.observe_us h (float_of_int (!tick land 0xffff)))));
    Test.make ~name:"obs/hist_snapshot"
      (Staged.stage (at T.Counters (fun () -> ignore (M.snapshot ()))))
  ]

(* ---------- P17: serving protocol (in-process, no TCP) ---------- *)

(* The Bechamel twin of --serve-report: one whole session lifecycle
   (open, a three-call pipeline with a query after each commit, close)
   through [Protocol.handle_line] — verb dispatch, JSON codec and
   session machinery without socket noise.  Session ids are fresh per
   run and closed at the end, so the registry stays flat. *)
let serve_tests =
  let module P = Weblab_server.Protocol in
  let module J = Weblab_server.Json in
  let ctx = P.make_ctx ~max_sessions:64 () in
  let n = ref 0 in
  let line obj = ignore (P.handle_line ctx (J.to_string obj)) in
  [ Test.make ~name:"serve/session(open+3commit+3query+close)"
      (Staged.stage (fun () ->
           incr n;
           let sid = Printf.sprintf "bm-%d" !n in
           line
             (J.Obj
                [ ("verb", J.Str "open"); ("session", J.Str sid);
                  ("backend", J.Str "incremental"); ("units", J.Int 2);
                  ("seed", J.Int 7) ]);
           List.iter
             (fun svc ->
               line
                 (J.Obj
                    [ ("verb", J.Str "commit"); ("session", J.Str sid);
                      ("service", J.Str svc) ]);
               line
                 (J.Obj
                    [ ("verb", J.Str "query"); ("session", J.Str sid);
                      ("kind", J.Str "why"); ("uri", J.Str "mu1") ]))
             [ "Normaliser"; "LanguageExtractor"; "Translator" ];
           line (J.Obj [ ("verb", J.Str "close"); ("session", J.Str sid) ])))
  ]

(* ---------- harness ---------- *)

let all_tests =
  [ test_paper_figures ] @ strategy_tests @ doc_scaling_tests
  @ rule_scaling_tests @ xquery_tests @ rdf_tests @ xml_tests @ ingest_tests
  @ reachability_tests @ extension_tests @ analytics_tests @ index_tests
  @ join_tests @ fault_tests @ incr_tests @ fused_tests @ parallel_tests
  @ obs_tests @ serve_tests

let all_tests =
  match !only with
  | None -> all_tests
  | Some sub -> List.filter (fun t -> name_contains ~sub (Test.name t)) all_tests

let () =
  if all_tests = [] then begin
    Printf.eprintf "--only %s matched no benchmarks\n"
      (Option.value ~default:"" !only);
    exit 2
  end

let benchmark test =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if !quick then Benchmark.cfg ~limit:20 ~quota:(Time.second 0.01) ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  Analyze.merge ols instances results

let pp_ns ppf v =
  if v > 1e9 then Fmt.pf ppf "%8.2f s " (v /. 1e9)
  else if v > 1e6 then Fmt.pf ppf "%8.2f ms" (v /. 1e6)
  else if v > 1e3 then Fmt.pf ppf "%8.2f us" (v /. 1e3)
  else Fmt.pf ppf "%8.1f ns" v

let () =
  print_endline "WebLab PROV benchmark suite (one series per experiment row)";
  print_endline "============================================================";
  let test = Test.make_grouped ~name:"weblab-prov" ~fmt:"%s %s" all_tests in
  let results = benchmark test in
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some [ e ] -> e
          | Some _ | None -> nan
        in
        (name, estimate) :: acc)
      clock []
    |> List.sort compare
  in
  List.iter (fun (name, est) -> Fmt.pr "%-54s %a/run@." name pp_ns est) rows;
  (match !json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "[\n";
    let last = List.length rows - 1 in
    List.iteri
      (fun i (name, est) ->
        Printf.fprintf oc "  {\"name\": %S, \"ns_per_run\": %s}%s\n" name
          (if Float.is_nan est then "null" else Printf.sprintf "%.1f" est)
          (if i = last then "" else ","))
      rows;
    output_string oc "]\n";
    close_out oc;
    Printf.printf "Wrote %d estimates to %s\n" (last + 1) path);
  print_endline "------------------------------------------------------------";
  print_endline
    "Series: strategy/* (P1), scale_doc/* (P2), scale_rules/* (P3),\n\
     xquery_opt/* (P4), rdf/* (P5), xml/* (P6), reach/* (P7),\n\
     ext/* (P8), index/* (P10), join/* (P11), fault/* (P12),\n\
     incr/* (P13), par/* (P14; see also --parallel-report),\n\
     obs/* (P15; see also --obs-guard), fused/* (P16),\n\
     serve/* (P17; see also --serve-report), paper/* (F1-E9).\n\
     See EXPERIMENTS.md for the discussion."
