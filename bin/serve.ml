(* weblab-serve: the provenance serving daemon.

   A long-lived process hosting many concurrent workflow sessions, each
   an orchestrator + strategy backend over a live document; clients speak
   newline-delimited JSON over TCP (see Protocol).  Try it with nc:

     $ weblab-serve --port 8321 &
     $ printf '%s\n' '{"id":1,"verb":"open","backend":"incremental"}' | nc 127.0.0.1 8321 *)

open Cmdliner
open Weblab_server

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")

let port_arg =
  Arg.(value & opt int 8321
       & info [ "port"; "p" ] ~docv:"PORT"
           ~doc:"TCP port ($(b,0) binds an ephemeral port and prints it).")

let max_sessions_arg =
  Arg.(value & opt int 1024
       & info [ "max-sessions" ] ~docv:"N"
           ~doc:"Admission control: reject $(b,open) beyond $(docv) live \
                 sessions.")

let shards_arg =
  Arg.(value & opt int 16
       & info [ "shards" ] ~docv:"N"
           ~doc:"Session-registry shards (per-shard locking).")

let backend_arg =
  let parse s =
    match Weblab_prov.Strategy.kind_of_string s with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown backend %S (%s)" s
             (String.concat "|" Weblab_prov.Strategy.names)))
  in
  let print ppf k = Fmt.string ppf (Weblab_prov.Strategy.kind_to_string k) in
  Arg.(value & opt (conv (parse, print)) `Incremental
       & info [ "backend" ] ~docv:"STRATEGY"
           ~doc:"Default strategy backend for sessions that do not pick \
                 one at $(b,open).")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Record telemetry (counters, gauges, per-verb latency \
                 histograms) and print a summary on SIGINT/SIGTERM \
                 shutdown.")

let trace_arg =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:"Record spans too (implies $(b,--profile)): every request \
                 runs under a request id that stamps its spans, served \
                 back by the $(b,metrics) verb's $(b,trace) form.  Span \
                 retention is a bounded ring (see \
                 $(b,--trace-retention)); evictions are counted, never \
                 silent.")

let trace_retention_arg =
  Arg.(value & opt int 4096
       & info [ "trace-retention" ] ~docv:"N"
           ~doc:"Ring capacity for retained spans under $(b,--trace): the \
                 newest $(docv) spans survive, older ones are dropped and \
                 tallied.")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Periodically rewrite $(docv) with the Prometheus text \
                 exposition of the live metrics (atomic rename per dump; \
                 implies $(b,--profile)).  A final dump runs at \
                 shutdown.")

let metrics_every_arg =
  Arg.(value & opt float 5.
       & info [ "metrics-every" ] ~docv:"SECS"
           ~doc:"Seconds between $(b,--metrics-out) dumps (default 5).")

let slow_log_arg =
  Arg.(value & opt (some string) None
       & info [ "slow-log" ] ~docv:"FILE"
           ~doc:"Append one JSON line per request at or over the \
                 $(b,--slow-ms) threshold: verb, session, request id, \
                 duration, outcome, result cardinalities (implies \
                 $(b,--profile)).")

let slow_ms_arg =
  Arg.(value & opt float 100.
       & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Slow-query threshold in milliseconds (default 100).")

let data_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "data-dir" ] ~docv:"DIR"
           ~doc:"Persist sessions: append a per-commit write-ahead log \
                 under $(docv) (created if missing) and restore every \
                 logged session read-only at boot.")

let report_counters () =
  let cs = Weblab_obs.Telemetry.counters () in
  if cs <> [] then begin
    prerr_endline "--- counters ---";
    List.iter (fun (n, v) -> Printf.eprintf "%-40s %d\n" n v) cs;
    flush stderr
  end

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* One exposition dump: write-to-tmp + rename, so a scraper reading the
   file never sees a torn write. *)
let dump_metrics path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Weblab_obs.Sinks.exposition ()));
  Sys.rename tmp path

let start_metrics_dumper path every =
  let every = if every <= 0. then 5. else every in
  ignore
    (Thread.create
       (fun () ->
         while true do
           Thread.delay every;
           try dump_metrics path with Sys_error _ -> ()
         done)
       ())

let main host port max_sessions shards backend profile trace trace_retention
    metrics_out metrics_every slow_log slow_ms data_dir =
  let module T = Weblab_obs.Telemetry in
  (* Any metrics consumer needs the recorder on; spans only under
     --trace, and then behind a bounded ring — a daemon must not grow an
     unbounded span list. *)
  if profile || Option.is_some metrics_out || Option.is_some slow_log then
    T.set_level T.Counters;
  if trace then begin
    T.set_level T.Full;
    T.set_retention (Some (max 1 trace_retention))
  end;
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Info);
  Option.iter mkdir_p data_dir;
  let ctx =
    Protocol.make_ctx ~shards ~max_sessions ~default_backend:backend ?data_dir
      ?slow_log_path:slow_log ~slow_ms ()
  in
  (* Warm restart: replay every WAL before the listener accepts, so no
     request can race a half-restored registry. *)
  let restored = Protocol.restore_sessions ctx in
  List.iter
    (fun (sid, rp) ->
      Logs.info (fun m ->
          m "restored session %S: %d commits, %d triples%s" sid
            rp.Weblab_rdf.Wal.rp_commits rp.Weblab_rdf.Wal.rp_triples
            (if rp.Weblab_rdf.Wal.rp_torn then " (torn tail dropped)" else "")))
    restored;
  let srv = Server.start ~host ~port ctx in
  Option.iter
    (fun path ->
      dump_metrics path;
      start_metrics_dumper path metrics_every)
    metrics_out;
  (* The readiness line CI and scripts wait for — stdout, flushed. *)
  if restored <> [] then
    Printf.printf "weblab-serve restored %d session(s)\n" (List.length restored);
  Printf.printf "weblab-serve listening on %s:%d\n%!" host (Server.port srv);
  let shutdown _ =
    Server.stop srv;
    Option.iter (fun path -> try dump_metrics path with Sys_error _ -> ())
      metrics_out;
    if profile then report_counters ();
    exit 0
  in
  (try
     Sys.set_signal Sys.sigint (Sys.Signal_handle shutdown);
     Sys.set_signal Sys.sigterm (Sys.Signal_handle shutdown)
   with Invalid_argument _ -> ());
  Server.wait srv

let cmd =
  Cmd.v
    (Cmd.info "weblab-serve"
       ~doc:"Provenance serving daemon: concurrent workflow sessions with \
             live why/impact/SPARQL queries over NDJSON/TCP")
    Term.(const main $ host_arg $ port_arg $ max_sessions_arg $ shards_arg
          $ backend_arg $ profile_arg $ trace_arg $ trace_retention_arg
          $ metrics_out_arg $ metrics_every_arg $ slow_log_arg $ slow_ms_arg
          $ data_dir_arg)

let () = exit (Cmd.eval cmd)
