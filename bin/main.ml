(* weblab-prov: command-line front end.

   - figures: regenerate every figure/table of the paper from a live run
   - run:     execute a synthetic media-mining workflow and print its
              trace, provenance tables and final document
   - export:  emit the provenance graph as Turtle, N-Triples or DOT
   - query:   run a SPARQL query against the exported provenance graph *)

open Cmdliner
open Weblab_prov
open Weblab_scenario

(* Parser, error message and usage string all derive from the backend
   registry: a newly registered backend is accepted and documented here
   with no edit to this file. *)
let strategy_conv =
  let parse s =
    match Strategy.kind_of_string s with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown strategy %S (%s)" s
             (String.concat "|" Strategy.names)))
  in
  let print ppf s = Fmt.string ppf (Strategy.kind_to_string s) in
  Arg.conv (parse, print)

let strategy_arg =
  let pretty_names =
    match List.rev (List.map (Printf.sprintf "$(b,%s)") Strategy.names) with
    | [] -> ""
    | [ only ] -> only
    | last :: rev_init ->
      String.concat ", " (List.rev rev_init) ^ " or " ^ last
  in
  Arg.(value & opt strategy_conv `Rewrite
       & info [ "strategy" ] ~docv:"STRATEGY"
           ~doc:
             (Printf.sprintf
                "Evaluation strategy: %s.  All produce the same links; \
                 online, incremental and fused infer during execution \
                 (fused compiles the whole rule set into one shared plan), \
                 replay and rewrite post-hoc."
                pretty_names))

let inherit_arg =
  Arg.(value & flag
       & info [ "inherit" ] ~doc:"Also compute inherited provenance links.")

let units_arg =
  Arg.(value & opt int 3
       & info [ "units" ] ~docv:"N" ~doc:"Number of media units in the corpus.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let extended_arg =
  Arg.(value & flag
       & info [ "extended" ]
           ~doc:"Use the extended pipeline (tokenizer, entities, summary, \
                 sentiment).")

let fault_rate_arg =
  Arg.(value & opt float 0.0
       & info [ "fault-rate" ] ~docv:"RATE"
           ~doc:"Inject seeded faults (crash, garbage XML, committed-node \
                 mutation, duplicate URI, stall) with this per-attempt \
                 probability; failed calls are rolled back and skipped, and \
                 provenance is inferred over the surviving calls.")

let retries_arg =
  Arg.(value & opt int 0
       & info [ "retries" ] ~docv:"N"
           ~doc:"Retry each failing call up to $(docv) times with simulated \
                 exponential backoff before giving up on it.")

let jobs_arg =
  Arg.(value & opt int (Pool.default_jobs ())
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Inference parallelism: fan rule evaluation out over \
                 $(docv) domains (default: available cores minus one, or \
                 the $(b,JOBS) environment variable).  The provenance \
                 graph is bit-identical for every value; $(b,--jobs 1) \
                 is the sequential path.")

(* --- observability options (shared by figures/run/export) --- *)

type obs_opts = {
  profile : bool;
  trace_out : string option;
  events_out : string option;
  meta_prov : bool;
  logical_clock : bool;
}

let obs_term =
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Record telemetry during the run and print a summary \
                   (span table and counters) at the end.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE.json"
             ~doc:"Write a Chrome trace-event JSON file — load it in \
                   Perfetto; one track per domain worker.")
  in
  let events_out =
    Arg.(value & opt (some string) None
         & info [ "events-out" ] ~docv:"FILE.jsonl"
             ~doc:"Write the telemetry event log as JSON Lines.")
  in
  let meta_prov =
    Arg.(value & flag
         & info [ "meta-prov" ]
             ~doc:"Record the inference run itself as PROV: one activity \
                   per service call × rule evaluation, every inferred link \
                   $(b,prov:wasGeneratedBy) the evaluation that produced \
                   it.")
  in
  let logical_clock =
    Arg.(value & flag
         & info [ "logical-clock" ]
             ~doc:"Timestamp telemetry with a deterministic logical tick \
                   counter instead of the wall clock (stable output for \
                   golden tests).")
  in
  Term.(const (fun profile trace_out events_out meta_prov logical_clock ->
            { profile; trace_out; events_out; meta_prov; logical_clock })
        $ profile $ trace_out $ events_out $ meta_prov $ logical_clock)

let obs_setup (o : obs_opts) =
  let module T = Weblab_obs.Telemetry in
  let full = o.profile || o.trace_out <> None || o.events_out <> None in
  T.set_level (if full then T.Full else T.Off);
  T.set_meta o.meta_prov;
  T.set_clock (if o.logical_clock then T.Logical else T.Wall);
  T.reset ()

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Flush the recorder after an instrumented run: sink files first, the
   human summary last so it reads as the run's epilogue. *)
let obs_report (o : obs_opts) =
  (match o.events_out with
   | Some path ->
     write_file path (Weblab_obs.Sinks.jsonl ());
     Printf.eprintf "telemetry events written to %s\n%!" path
   | None -> ());
  (match o.trace_out with
   | Some path ->
     write_file path (Weblab_obs.Sinks.chrome_trace ());
     Printf.eprintf "Chrome trace written to %s (open in Perfetto)\n%!" path
   | None -> ());
  if o.profile then begin
    print_string "\n=== Telemetry summary ===\n";
    print_string (Weblab_obs.Sinks.summary ())
  end

let meta_prov_turtle () =
  Weblab_rdf.Turtle.to_turtle
    (Prov_export.meta_to_store (Weblab_obs.Telemetry.meta_activities ()))

(* --- the compiled-plan dump (--explain-plan) --- *)

let explain_plan_arg =
  Arg.(value & flag
       & info [ "explain-plan" ]
           ~doc:"Print the fused rule-set compiler's plan for the \
                 command's rulebook — pattern trie, shared \
                 subexpressions, join order — in a stable textual form, \
                 and exit without running the workflow.")

(* --- figures --- *)

let figures obs only explain_plan =
  obs_setup obs;
  if explain_plan then
    (* The paper scenario's plan: deterministic (rulebook order, initial
       document estimates) — CI diffs it against a golden dump. *)
    print_string
      (Strategy_fused.explain ~doc:(Paper.initial_document ())
         (Paper.rulebook ()))
  else begin
  let e = Paper.run () in
  List.iter
    (fun (title, body) ->
      let wanted =
        match only with
        | None -> true
        | Some o ->
          String.lowercase_ascii title = String.lowercase_ascii o
          || String.equal (List.nth (String.split_on_char ' ' title) 1) o
      in
      if wanted then Printf.printf "=== %s ===\n%s\n" title body)
    (Figures.all e);
  if obs.meta_prov then begin
    print_string "=== Meta-provenance (inference run as PROV) ===\n";
    print_string (meta_prov_turtle ())
  end;
  obs_report obs
  end

let figures_cmd =
  let only =
    Arg.(value & opt (some string) None
         & info [ "only" ] ~docv:"WHICH"
             ~doc:"Print a single artifact, e.g. $(b,--only 'Figure 2') or \
                   $(b,--only 5).")
  in
  Cmd.v (Cmd.info "figures" ~doc:"Regenerate the paper's figures and examples")
    Term.(const figures $ obs_term $ only $ explain_plan_arg)

(* --- shared pipeline runner --- *)

let build_rulebook services =
  List.filter_map
    (fun svc ->
      let name = Weblab_workflow.Service.name svc in
      Weblab_services.Catalog.find name
      |> Option.map (fun e ->
             (name, List.map Rule_parser.parse e.Weblab_services.Catalog.rules)))
    services

(* Supervision policy from the CLI knobs: a positive fault rate turns on
   skip-on-failure (the run completes and provenance covers the surviving
   calls); retries get a 10 ms simulated backoff base. *)
let fault_policy ~fault_rate ~retries =
  { Weblab_workflow.Orchestrator.default_policy with
    retries;
    backoff_ms = (if retries > 0 then 10. else 0.);
    on_failure = (if fault_rate > 0. then `Skip else `Propagate) }

let maybe_wrap_faulty ~fault_rate ~seed services =
  if fault_rate > 0. then
    Weblab_services.Faulty.wrap_all
      (Weblab_services.Faulty.plan ~rate:fault_rate ~seed ())
      services
  else services

let run_pipeline ~units ~seed ~extended ~(strategy : Strategy.kind)
    ~inheritance ~fault_rate ~retries ~jobs =
  let doc = Weblab_services.Workload.make_document ~units ~seed () in
  let services = Weblab_services.Workload.standard_pipeline ~extended () in
  let rb = build_rulebook services in
  let services = maybe_wrap_faulty ~fault_rate ~seed services in
  let policy = fault_policy ~fault_rate ~retries in
  let exec, g = Engine.run_with_strategy ~policy ~jobs strategy doc services rb in
  let g = if inheritance then Inheritance.close exec.Engine.doc g else g in
  (exec, g)

(* --- run --- *)

let resolve_catalog name =
  Option.map
    (fun e -> e.Weblab_services.Catalog.service)
    (Weblab_services.Catalog.find name)

let rec wrap_wf plan = function
  | Weblab_workflow.Parallel.Call s ->
    Weblab_workflow.Parallel.Call (Weblab_services.Faulty.wrap plan s)
  | Weblab_workflow.Parallel.Seq l ->
    Weblab_workflow.Parallel.Seq (List.map (wrap_wf plan) l)
  | Weblab_workflow.Parallel.Par l ->
    Weblab_workflow.Parallel.Par (List.map (wrap_wf plan) l)
  | Weblab_workflow.Parallel.Nested (n, b) ->
    Weblab_workflow.Parallel.Nested (n, wrap_wf plan b)

let run_dsl ~units ~seed ~(strategy : Strategy.kind) ~inheritance ~fault_rate
    ~retries ~jobs spec =
  (* Parallel workflow inference is post-hoc (it needs the series-parallel
     happened-before relation, only known once the schedule is recorded). *)
  let strategy : Strategy.post_hoc =
    match strategy with
    | (`Replay | `Rewrite) as s -> s
    | (`Online | `Incremental | `Fused) as s ->
      Printf.eprintf
        "strategy %s is execution-time only; parallel workflow expressions \
         infer post-hoc (use replay or rewrite)\n"
        (Strategy.kind_to_string s);
      exit 1
  in
  let doc = Weblab_services.Workload.make_document ~units ~seed () in
  match Weblab_workflow.Wf_parser.parse_opt ~resolve:resolve_catalog spec with
  | Error msg ->
    Printf.eprintf "workflow error: %s\n" msg;
    exit 1
  | Ok wf ->
    let rec service_names = function
      | Weblab_workflow.Parallel.Call s -> [ Weblab_workflow.Service.name s ]
      | Weblab_workflow.Parallel.Seq l | Weblab_workflow.Parallel.Par l ->
        List.concat_map service_names l
      | Weblab_workflow.Parallel.Nested (_, b) -> service_names b
    in
    let rb =
      service_names wf
      |> List.sort_uniq String.compare
      |> List.filter_map (fun name ->
             Weblab_services.Catalog.find name
             |> Option.map (fun e ->
                    (name, List.map Rule_parser.parse e.Weblab_services.Catalog.rules)))
    in
    let wf =
      if fault_rate > 0. then
        wrap_wf (Weblab_services.Faulty.plan ~rate:fault_rate ~seed ()) wf
      else wf
    in
    let policy = fault_policy ~fault_rate ~retries in
    let exec, pexec, g =
      Engine.run_parallel ~policy ~strategy ~inheritance ~jobs doc wf rb
    in
    print_string "Schedule (with channels):\n";
    List.iter
      (fun (c : Weblab_workflow.Trace.call) ->
        if c.Weblab_workflow.Trace.time > 0 then
          Printf.printf "  t%-2d %-18s %s\n" c.Weblab_workflow.Trace.time
            c.Weblab_workflow.Trace.service
            (Option.value ~default:"?"
               (Weblab_workflow.Parallel.channel_of pexec
                  c.Weblab_workflow.Trace.time)))
      (Weblab_workflow.Trace.calls exec.Engine.trace);
    (exec, g)

let run obs units seed extended strategy inheritance fault_rate retries jobs
    show_doc workflow explain_plan =
  obs_setup obs;
  if explain_plan then begin
    let doc = Weblab_services.Workload.make_document ~units ~seed () in
    let services = Weblab_services.Workload.standard_pipeline ~extended () in
    print_string (Strategy_fused.explain ~doc (build_rulebook services))
  end
  else begin
  let exec, g =
    match workflow with
    | Some spec ->
      run_dsl ~units ~seed ~strategy ~inheritance ~fault_rate ~retries ~jobs
        spec
    | None ->
      run_pipeline ~units ~seed ~extended ~strategy ~inheritance ~fault_rate
        ~retries ~jobs
  in
  print_string "Source (execution trace):\n";
  print_string (Weblab_workflow.Trace.source_table exec.Engine.trace);
  if fault_rate > 0. then begin
    print_string "\nAttempts:\n";
    print_string (Weblab_workflow.Trace.attempts_table exec.Engine.trace);
    print_string "\nFailure summary:\n";
    print_string
      (Analytics.failure_stats_to_string
         (Analytics.failure_stats exec.Engine.trace))
  end;
  print_string "\nProvenance links:\n";
  print_string (Prov_graph.provenance_table ~with_rule:true g);
  Printf.printf "\n%d resources, %d links, acyclic=%b, temporally sound=%b\n"
    (List.length (Prov_graph.labeled_resources g))
    (Prov_graph.size g) (Prov_graph.is_acyclic g) (Prov_graph.temporally_sound g);
  (* With fault injection the failure tally belongs in the closing summary
     too — the tables above scroll away, and these are the same numbers the
     telemetry counters (orch.calls.*, orch.attempts, orch.backoff_ms)
     accumulate. *)
  if fault_rate > 0. then begin
    let st = Analytics.failure_stats exec.Engine.trace in
    Printf.printf
      "faults: %d/%d calls failed, %d retried, %d attempts, %.1f ms \
       simulated backoff\n"
      st.Analytics.calls_failed st.Analytics.calls_total
      st.Analytics.calls_retried st.Analytics.attempts_total
      st.Analytics.backoff_ms_total
  end;
  if show_doc then begin
    print_string "\nFinal document:\n";
    print_string (Weblab_xml.Printer.to_string ~indent:true exec.Engine.doc);
    print_newline ()
  end;
  if obs.meta_prov then begin
    print_string "\nMeta-provenance (inference run as PROV):\n";
    print_string (meta_prov_turtle ())
  end;
  obs_report obs
  end

let run_cmd =
  let show_doc =
    Arg.(value & flag & info [ "show-doc" ] ~doc:"Print the final XML document.")
  in
  let workflow =
    Arg.(value & opt (some string) None
         & info [ "workflow" ] ~docv:"WF"
             ~doc:"A workflow expression over catalog services, e.g. \
                   $(b,\"(OcrService | Normaliser); LanguageExtractor\"). \
                   ';' sequences, '|' parallelizes, 'name:(...)' nests.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a synthetic media-mining workflow")
    Term.(const run $ obs_term $ units_arg $ seed_arg $ extended_arg
          $ strategy_arg $ inherit_arg $ fault_rate_arg $ retries_arg
          $ jobs_arg $ show_doc $ workflow $ explain_plan_arg)

(* --- export --- *)

let export obs units seed extended strategy inheritance jobs format =
  obs_setup obs;
  let _, g =
    run_pipeline ~units ~seed ~extended ~strategy ~inheritance ~fault_rate:0.0
      ~retries:0 ~jobs
  in
  let meta =
    if obs.meta_prov then Some (Weblab_obs.Telemetry.meta_activities ())
    else None
  in
  (match format with
   | "turtle" -> print_string (Prov_export.to_turtle ?meta g)
   | "ntriples" -> print_string (Prov_export.to_ntriples ?meta g)
   | "dot" -> print_string (Dot.to_dot g)
   | "provxml" -> print_string (Prov_export.to_prov_xml g)
   | f ->
     Printf.eprintf "unknown format %S (turtle|ntriples|dot|provxml)\n" f;
     exit 1);
  obs_report obs

let export_cmd =
  let format =
    Arg.(value & opt string "turtle"
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: $(b,turtle), $(b,ntriples), $(b,dot) or \
                   $(b,provxml).")
  in
  Cmd.v (Cmd.info "export" ~doc:"Export the provenance graph")
    Term.(const export $ obs_term $ units_arg $ seed_arg $ extended_arg
          $ strategy_arg $ inherit_arg $ jobs_arg $ format)

(* --- query --- *)

let query units seed extended strategy inheritance jobs q =
  let _, g =
    run_pipeline ~units ~seed ~extended ~strategy ~inheritance ~fault_rate:0.0
      ~retries:0 ~jobs
  in
  let store = Prov_export.to_store g in
  match Weblab_rdf.Sparql.run store q with
  | table -> print_string (Weblab_relalg.Table.to_string table)
  | exception Weblab_rdf.Sparql.Error msg ->
    Printf.eprintf "SPARQL error: %s\n" msg;
    exit 1

let query_cmd =
  let q =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"QUERY"
             ~doc:"A SPARQL query, e.g. \"SELECT ?e WHERE { ?e a prov:Entity }\".")
  in
  Cmd.v (Cmd.info "query" ~doc:"Query the provenance graph with SPARQL")
    Term.(const query $ units_arg $ seed_arg $ extended_arg $ strategy_arg
          $ inherit_arg $ jobs_arg $ q)

(* --- lint --- *)

let lint units seed extended =
  let doc = Weblab_services.Workload.make_document ~units ~seed () in
  let services = Weblab_services.Workload.standard_pipeline ~extended () in
  let order = List.map Weblab_workflow.Service.name services in
  let rb = build_rulebook services in
  let exec = Engine.run doc services in
  let produces = Static_check.observed_produces doc exec.Engine.trace in
  Printf.printf "Workflow order: %s\n" (String.concat " -> " order);
  Printf.printf "Observed production map:\n";
  List.iter
    (fun (s, els) -> Printf.printf "  %-18s %s\n" s (String.concat ", " els))
    produces;
  match Static_check.check ~order ~produces rb with
  | [] -> print_endline "\nRulebook is clean: every rule can fire."
  | diags ->
    Printf.printf "\n%d diagnostic(s):\n" (List.length diags);
    List.iter
      (fun d -> Printf.printf "  - %s\n" (Static_check.diagnostic_to_string d))
      diags;
    exit 1

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically check the rulebook against the workflow definition")
    Term.(const lint $ units_arg $ seed_arg $ extended_arg)

(* --- analyze --- *)

let analyze units seed extended jobs taint =
  let exec, g =
    run_pipeline ~units ~seed ~extended ~strategy:`Rewrite ~inheritance:false
      ~fault_rate:0.0 ~retries:0 ~jobs
  in
  print_endline "=== Provenance metrics (explicit graph) ===";
  print_string (Analytics.metrics_to_string (Analytics.metrics g));
  print_endline "\n=== Storage ablation (explicit vs materialized closure) ===";
  let ab = Analytics.storage_ablation exec.Engine.doc g in
  Printf.printf
    "explicit-only store: %d bytes\nwith closure:        %d bytes\n\
     on-demand saves %.0f%% of storage (%s)\n"
    ab.Analytics.explicit_only_bytes ab.Analytics.materialized_bytes
    (100.0 *. ab.Analytics.savings) ab.Analytics.closure_cost_ms_hint;
  match taint with
  | None -> ()
  | Some source ->
    let g = Inheritance.close exec.Engine.doc g in
    print_endline "\n=== Replay plan ===";
    print_string (Replay_plan.to_string (Replay_plan.build g ~sources:[ source ]))

let analyze_cmd =
  let taint =
    Arg.(value & opt (some string) None
         & info [ "taint" ] ~docv:"URI"
             ~doc:"Also compute the re-execution plan if this resource is \
                   stale (try $(b,mu1)).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Provenance metrics, storage ablation and replay planning")
    Term.(const analyze $ units_arg $ seed_arg $ extended_arg $ jobs_arg
          $ taint)

(* --- explain --- *)

let explain units seed extended from_uri to_uri =
  let doc = Weblab_services.Workload.make_document ~units ~seed () in
  let services = Weblab_services.Workload.standard_pipeline ~extended () in
  let rb = build_rulebook services in
  let exec = Engine.run doc services in
  match
    Explain.link ~doc ~trace:exec.Engine.trace rb ~from_uri ~to_uri
  with
  | _ :: _ as ws ->
    Printf.printf "%s -> %s holds because:\n" from_uri to_uri;
    List.iter (fun w -> Printf.printf "  - %s\n" (Explain.witness_to_string w)) ws
  | [] ->
    Printf.printf "no %s -> %s link.  Closest attempts:\n" from_uri to_uri;
    let ds = Explain.missing ~doc ~trace:exec.Engine.trace rb ~from_uri ~to_uri in
    if ds = [] then print_endline "  (no rule could relate these resources)"
    else
      List.iter
        (fun d ->
          Printf.printf "  - rule %s at (%s, t%d): %s\n" d.Explain.d_rule
            d.Explain.d_call.Weblab_workflow.Trace.service
            d.Explain.d_call.Weblab_workflow.Trace.time
            (Explain.failure_to_string d.Explain.failure))
        ds

let explain_cmd =
  let from_uri =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FROM" ~doc:"The derived resource.")
  in
  let to_uri =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"TO" ~doc:"The resource it (supposedly) used.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain why a provenance link exists (or why it does not)")
    Term.(const explain $ units_arg $ seed_arg $ extended_arg $ from_uri $ to_uri)

let main_cmd =
  Cmd.group
    (Cmd.info "weblab-prov" ~version:"1.0.0"
       ~doc:"Fine-grained provenance links for XML artifacts (WebLab PROV)")
    [ figures_cmd; run_cmd; export_cmd; query_cmd; lint_cmd; analyze_cmd;
      explain_cmd ]

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  exit (Cmd.eval main_cmd)
